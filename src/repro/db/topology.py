"""Network topology and the pluggable message cost model.

The paper models the network as a zero-latency LAN switch: only the
per-end MsgCPU cost matters (Section 4).  Production traffic crosses
datacenters, where each message additionally pays *wire latency* -- and
commit-protocol choice matters most exactly there, because every voting
or decision round trip now costs milliseconds (Gray & Lamport count
protocols by message delays for this reason).

This module layers that in without touching the paper's model:

- :class:`NetworkTopology` is the *spec*: site -> datacenter placement
  plus a per-link one-way latency/jitter/loss description, parseable
  from a CLI string (``uniform``, ``dcs:2x4:rtt_ms=40``, or an explicit
  ``matrix:...`` form).  ``uniform`` is the paper-faithful default.
- :class:`CostModel` is the protocol :meth:`repro.db.network.Network.send`
  consults per remote message for wire delay and stochastic wire loss.
- :class:`LanSwitch` implements the paper's switch (zero delay, no
  loss); runs configured with the ``uniform`` topology are byte-identical
  to runs with no topology at all.
- :class:`WanTopology` realizes a multi-datacenter spec: intra-DC links
  stay cheap, cross-DC links pay ``rtt_ms / 2`` one-way (plus optional
  exponential jitter and loss), with every draw taken from a dedicated
  per-link RNG substream so trajectories are reproducible and soak
  checkpoints capture the streams automatically.

The cost model *composes with* the fault injector: topology latency and
loss apply first (the healthy wire), then the injector's per-kind delay
and loss hooks stack on top (the unhealthy one).
"""

from __future__ import annotations

import dataclasses
import enum
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.rng import RandomStreams

#: canonical spelling of the accepted CLI forms (quoted by parse errors).
_SPEC_FORMS = ("'uniform', "
               "'dcs:<D>x<S>:rtt_ms=<ms>[:intra_ms=<ms>]"
               "[:jitter_ms=<ms>][:loss=<p>]', or "
               "'matrix:<ms>,<ms>,..;..[:jitter_ms=<ms>][:loss=<p>]'")


class TopologyKind(enum.Enum):
    """How sites are placed and what their links cost."""

    #: the paper's zero-latency LAN switch (every site in one room).
    UNIFORM = "uniform"
    #: ``D`` datacenters of ``S`` sites each; cross-DC links pay
    #: ``rtt_ms / 2`` one-way, intra-DC links pay ``intra_ms``.
    DCS = "dcs"
    #: explicit site x site one-way latency matrix (each site is its
    #: own "datacenter": every remote message counts as cross-DC).
    MATRIX = "matrix"


@dataclasses.dataclass(frozen=True)
class NetworkTopology:
    """Site placement plus per-link wire costs (CLI syntax in :meth:`parse`).

    The spec is resolved against a concrete ``num_sites`` when a system
    is built (:meth:`placement` / :meth:`latency_matrix`);
    :meth:`check_num_sites` rejects mismatched configurations early.
    """

    kind: TopologyKind = TopologyKind.UNIFORM
    #: dcs: number of datacenters.
    num_dcs: int = 1
    #: dcs: sites per datacenter (``num_dcs * sites_per_dc`` must equal
    #: the model's ``num_sites``).
    sites_per_dc: int = 1
    #: dcs: cross-datacenter round-trip time; one-way latency is half.
    rtt_ms: float = 0.0
    #: dcs: one-way latency of intra-DC links (the cheap local fabric).
    intra_ms: float = 0.0
    #: mean exponential jitter added per cross-DC message (0 = none).
    jitter_ms: float = 0.0
    #: per-message loss probability on cross-DC links (0 = reliable).
    loss_prob: float = 0.0
    #: matrix: one-way latency in ms, row = sender site, col = receiver.
    matrix: tuple[tuple[float, ...], ...] = ()

    @property
    def is_uniform(self) -> bool:
        return self.kind is TopologyKind.UNIFORM

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if self.jitter_ms < 0:
            raise ValueError(f"jitter_ms must be >= 0, got {self.jitter_ms}")
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError(
                f"loss_prob must be in [0, 1), got {self.loss_prob}")
        if self.kind is TopologyKind.DCS:
            if self.num_dcs < 1 or self.sites_per_dc < 1:
                raise ValueError(
                    f"dcs topology needs num_dcs >= 1 and sites_per_dc "
                    f">= 1, got {self.num_dcs}x{self.sites_per_dc}")
            if self.rtt_ms < 0 or self.intra_ms < 0:
                raise ValueError("latencies must be >= 0")
        elif self.kind is TopologyKind.MATRIX:
            size = len(self.matrix)
            if size == 0:
                raise ValueError("matrix topology needs at least one row")
            for row in self.matrix:
                if len(row) != size:
                    raise ValueError(
                        f"latency matrix must be square, got a "
                        f"{len(row)}-wide row in a {size}-row matrix")
                if any(value < 0 for value in row):
                    raise ValueError("latencies must be >= 0")
            for site in range(size):
                if self.matrix[site][site] != 0.0:
                    raise ValueError(
                        f"matrix diagonal must be 0 (site {site} cannot "
                        f"pay wire latency to itself)")

    def check_num_sites(self, num_sites: int) -> None:
        """Reject a spec that cannot cover ``num_sites`` sites."""
        if self.kind is TopologyKind.DCS:
            expected = self.num_dcs * self.sites_per_dc
            if expected != num_sites:
                raise ValueError(
                    f"topology places {self.num_dcs}x{self.sites_per_dc} "
                    f"= {expected} sites but the model has "
                    f"num_sites={num_sites}")
        elif self.kind is TopologyKind.MATRIX:
            if len(self.matrix) != num_sites:
                raise ValueError(
                    f"latency matrix covers {len(self.matrix)} sites but "
                    f"the model has num_sites={num_sites}")

    # ------------------------------------------------------------------
    # Resolution against a concrete site count
    # ------------------------------------------------------------------
    def placement(self, num_sites: int) -> tuple[int, ...] | None:
        """Site -> datacenter map (None for the uniform switch)."""
        if self.kind is TopologyKind.UNIFORM:
            return None
        self.check_num_sites(num_sites)
        if self.kind is TopologyKind.DCS:
            return tuple(site // self.sites_per_dc
                         for site in range(num_sites))
        return tuple(range(num_sites))

    def latency_matrix(self, num_sites: int,
                       ) -> tuple[tuple[float, ...], ...]:
        """One-way base latency per (sender, receiver) site pair."""
        self.check_num_sites(num_sites)
        if self.kind is TopologyKind.MATRIX:
            return self.matrix
        placement = self.placement(num_sites)
        if placement is None:
            return tuple(tuple(0.0 for _ in range(num_sites))
                         for _ in range(num_sites))
        one_way = self.rtt_ms / 2.0
        return tuple(
            tuple(0.0 if src == dst
                  else one_way if placement[src] != placement[dst]
                  else self.intra_ms
                  for dst in range(num_sites))
            for src in range(num_sites))

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "NetworkTopology":
        """Parse the CLI syntax.

        - ``uniform`` -- the paper's zero-latency switch (the default).
        - ``dcs:<D>x<S>:rtt_ms=<ms>[:intra_ms=<ms>][:jitter_ms=<ms>]``
          ``[:loss=<p>]`` -- ``D`` datacenters of ``S`` sites, e.g.
          ``dcs:2x4:rtt_ms=40``.
        - ``matrix:<row>;<row>;..`` with comma-separated one-way
          latencies, e.g. ``matrix:0,20;20,0``; optional ``jitter_ms=``
          / ``loss=`` segments may follow the matrix.
        """
        parts = text.strip().lower().split(":")
        kind = parts[0]
        try:
            if kind == "uniform" and len(parts) == 1:
                return cls()
            if kind == "dcs" and len(parts) >= 3:
                dims = parts[1].split("x")
                if len(dims) != 2:
                    raise ValueError(
                        f"expected <D>x<S> datacenter dimensions, "
                        f"got {parts[1]!r}")
                options = cls._parse_options(
                    parts[2:], ("rtt_ms", "intra_ms", "jitter_ms", "loss"))
                if "rtt_ms" not in options:
                    raise ValueError("dcs topology needs rtt_ms=<ms>")
                topology = cls(kind=TopologyKind.DCS,
                               num_dcs=int(dims[0]),
                               sites_per_dc=int(dims[1]),
                               rtt_ms=options["rtt_ms"],
                               intra_ms=options.get("intra_ms", 0.0),
                               jitter_ms=options.get("jitter_ms", 0.0),
                               loss_prob=options.get("loss", 0.0))
                topology.validate()
                return topology
            if kind == "matrix" and len(parts) >= 2:
                rows = tuple(
                    tuple(float(cell) for cell in row.split(","))
                    for row in parts[1].split(";"))
                options = cls._parse_options(
                    parts[2:], ("jitter_ms", "loss"))
                topology = cls(kind=TopologyKind.MATRIX, matrix=rows,
                               jitter_ms=options.get("jitter_ms", 0.0),
                               loss_prob=options.get("loss", 0.0))
                topology.validate()
                return topology
        except ValueError as error:
            raise ValueError(
                f"bad topology spec {text!r}: {error}") from None
        raise ValueError(
            f"bad topology spec {text!r}; expected {_SPEC_FORMS}")

    @staticmethod
    def _parse_options(segments: list[str],
                       allowed: tuple[str, ...]) -> dict[str, float]:
        options: dict[str, float] = {}
        for segment in segments:
            key, sep, value = segment.partition("=")
            if not sep or key not in allowed:
                raise ValueError(
                    f"unknown option {segment!r} (accepted: "
                    + ", ".join(f"{name}=<v>" for name in allowed) + ")")
            options[key] = float(value)
        return options

    def describe(self) -> str:
        if self.kind is TopologyKind.UNIFORM:
            return "uniform"
        extras = ""
        if self.jitter_ms:
            extras += f" jitter={self.jitter_ms:g}ms"
        if self.loss_prob:
            extras += f" loss={self.loss_prob:g}"
        if self.kind is TopologyKind.DCS:
            base = (f"{self.num_dcs} DCs x {self.sites_per_dc} sites, "
                    f"rtt={self.rtt_ms:g}ms intra={self.intra_ms:g}ms")
            return base + extras
        return f"matrix over {len(self.matrix)} sites" + extras


# ----------------------------------------------------------------------
# Cost models (the layer Network.send consults)
# ----------------------------------------------------------------------
class CostModel(typing.Protocol):
    """Per-remote-message wire costs the network consults on send.

    ``placement`` is the site -> datacenter map (None when the model has
    no datacenter structure); the network uses it to classify traffic as
    intra- vs cross-DC for the metrics layer.
    """

    placement: tuple[int, ...] | None

    def wire_delay(self, src_site: int, dst_site: int) -> float:
        """Wire latency in ms for one message on this link."""
        ...  # pragma: no cover - protocol

    def lose(self, src_site: int, dst_site: int) -> bool:
        """Draw whether the message is lost on the (healthy) wire."""
        ...  # pragma: no cover - protocol


class LanSwitch:
    """The paper's switch: zero wire latency, perfectly reliable.

    Configuring the ``uniform`` topology routes every send through this
    model; trajectories are byte-identical to a run with no cost model
    at all (pinned by tests and the golden fixture), and the consult
    overhead is gated at <= 2% by ``scripts/bench_trajectory.py``.
    """

    placement = None

    def wire_delay(self, src_site: int, dst_site: int) -> float:
        return 0.0

    def lose(self, src_site: int, dst_site: int) -> bool:
        return False

    def describe(self) -> str:
        return "uniform"

    def __repr__(self) -> str:
        return "<LanSwitch>"


class WanTopology:
    """A resolved multi-datacenter topology paying per-link wire costs.

    Jitter and loss draws come from a dedicated RNG substream per
    *directed link* (``topology-link-<src>-<dst>``), so adding a
    subscriber or another fault never perturbs the wire, protocols face
    common random numbers, and soak checkpoints restore the streams via
    the normal :meth:`repro.sim.rng.RandomStreams.capture_state` path.
    """

    def __init__(self, topology: NetworkTopology, num_sites: int,
                 streams: "RandomStreams") -> None:
        topology.validate()
        topology.check_num_sites(num_sites)
        self.topology = topology
        self.placement = topology.placement(num_sites)
        self._latency = topology.latency_matrix(num_sites)
        self._jitter_ms = topology.jitter_ms
        self._loss_prob = topology.loss_prob
        self._streams = streams
        #: per-directed-link RNG streams, created lazily on first use.
        self._link_rngs: dict[tuple[int, int], typing.Any] = {}

    def _link_rng(self, src_site: int, dst_site: int):
        rng = self._link_rngs.get((src_site, dst_site))
        if rng is None:
            rng = self._streams.stream(
                f"topology-link-{src_site}-{dst_site}")
            self._link_rngs[(src_site, dst_site)] = rng
        return rng

    def is_cross_dc(self, src_site: int, dst_site: int) -> bool:
        placement = self.placement
        assert placement is not None
        return placement[src_site] != placement[dst_site]

    def wire_delay(self, src_site: int, dst_site: int) -> float:
        delay = self._latency[src_site][dst_site]
        if self._jitter_ms > 0.0 and self.is_cross_dc(src_site, dst_site):
            delay += self._link_rng(src_site, dst_site).expovariate(
                1.0 / self._jitter_ms)
        return delay

    def lose(self, src_site: int, dst_site: int) -> bool:
        if self._loss_prob <= 0.0 or not self.is_cross_dc(src_site,
                                                          dst_site):
            return False
        return self._link_rng(src_site, dst_site).random() \
            < self._loss_prob

    def describe(self) -> str:
        return self.topology.describe()

    def __repr__(self) -> str:
        return f"<WanTopology {self.describe()}>"


def build_cost_model(topology: NetworkTopology | None, num_sites: int,
                     streams: "RandomStreams") -> CostModel | None:
    """The cost model a system should run (None = no indirection at all).

    No topology keeps the historical zero-consult hot path; ``uniform``
    routes through :class:`LanSwitch` (byte-identical, gated overhead);
    anything else pays real wire costs via :class:`WanTopology`.
    """
    if topology is None:
        return None
    if topology.is_uniform:
        return LanSwitch()
    return WanTopology(topology, num_sites, streams)
