"""Write-ahead logging.

The paper's cost model (Section 4.3): only *forced* log writes are
modeled explicitly, because they are synchronous and suspend the
transaction until completion; the cost of each forced write equals one
data-page disk write.  Non-forced records are recorded for bookkeeping
but cost nothing.

A :class:`LogManager` fronts a site's log disks.  An optional *group
commit* mode (paper Section 3.2, "Group Commit") batches forced writes
that arrive while the log disk is busy into a single disk write.
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.obs.bus import EventBus
from repro.obs.events import EventKind, LogForce, LogWrite
from repro.sim.events import Event
from repro.sim.resources import Server

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Environment


class LogRecordKind(enum.Enum):
    """Record types written by the implemented protocols."""

    PREPARE = "prepare"
    COLLECTING = "collecting"     # presumed commit: cohort roster
    PRECOMMIT = "precommit"       # 3PC
    COMMIT = "commit"
    ABORT = "abort"
    END = "end"
    ACCEPT = "accept"             # Paxos Commit: acceptor's batched 2b
    REPLICA_UPDATE = "replica-update"  # replication: applied copy write


@dataclasses.dataclass
class LogRecord:
    """One log record (bookkeeping only; contents are not simulated)."""

    kind: LogRecordKind
    txn_id: int
    site_id: int
    forced: bool
    time: float
    #: which incarnation of the transaction wrote the record; -1 when the
    #: writer did not say (pre-fault-plane call sites).
    incarnation: int = -1


class LogManager:
    """The log at one site.

    ``force_write`` is a coroutine: it occupies a log disk for one page
    write.  ``write`` (non-forced) is free, matching the paper's model.
    """

    def __init__(self, env: "Environment", site_id: int,
                 log_disks: typing.Sequence[Server],
                 write_time_ms: float,
                 group_commit: bool = False,
                 bus: EventBus | None = None,
                 retain_records: bool = True) -> None:
        self.env = env
        self.site_id = site_id
        #: instrumentation plane; a standalone manager gets a private bus.
        self.bus = bus if bus is not None else EventBus()
        self.log_disks = list(log_disks)
        self.write_time_ms = write_time_ms
        self.group_commit = group_commit
        #: keep every record forever (analysis/tests read ``records``)?
        #: Soak runs turn this off: the full history of a 10^6-transaction
        #: run cannot be retained, so only the per-transaction recovery
        #: index survives, pruned as transactions complete.
        self.retain_records = retain_records
        self.records: list[LogRecord] = []
        #: (txn_id, incarnation) -> records, for O(1) recovery lookups.
        self._by_txn: dict[tuple[int, int], list[LogRecord]] = {}
        #: incremental per-kind tally (exact mirror of ``records`` when
        #: retention is on; the only tally available when it is off).
        self._counts: dict[LogRecordKind, int] = {}
        self.forced_count = 0
        self.unforced_count = 0
        self._next_disk = 0
        # Group-commit state: whether a flush is in progress, and the
        # event the *next* batch of writers is waiting on.
        self._flushing = False
        self._pending: Event | None = None
        self.group_flushes = 0

    # ------------------------------------------------------------------
    def write(self, kind: LogRecordKind, txn_id: int,
              incarnation: int = -1) -> LogRecord:
        """Append a non-forced record (no cost)."""
        record = LogRecord(kind, txn_id, self.site_id, forced=False,
                           time=self.env.now, incarnation=incarnation)
        if self.retain_records:
            self.records.append(record)
        self._by_txn.setdefault((txn_id, incarnation), []).append(record)
        self._counts[kind] = self._counts.get(kind, 0) + 1
        self.unforced_count += 1
        if self.bus.has_subscribers(EventKind.LOG_WRITE):
            self.bus.publish(LogWrite(self.env.now, self.site_id, kind,
                                      txn_id))
        return record

    def force_write(self, kind: LogRecordKind, txn_id: int,
                    incarnation: int = -1,
                    ) -> typing.Generator[Event, typing.Any, LogRecord]:
        """Coroutine: append a record and flush it to a log disk.

        The caller is suspended for the duration of the disk write (plus
        any queueing at the log disk).
        """
        record = LogRecord(kind, txn_id, self.site_id, forced=True,
                           time=self.env.now, incarnation=incarnation)
        if self.retain_records:
            self.records.append(record)
        self._by_txn.setdefault((txn_id, incarnation), []).append(record)
        self._counts[kind] = self._counts.get(kind, 0) + 1
        self.forced_count += 1
        if self.bus.has_subscribers(EventKind.LOG_FORCE):
            self.bus.publish(LogForce(self.env.now, self.site_id, kind,
                                      txn_id))
        if self.group_commit:
            yield from self._group_commit_flush()
        else:
            disk = self._pick_disk()
            yield from disk.serve(self.write_time_ms)
        record.time = self.env.now
        return record

    # ------------------------------------------------------------------
    def _pick_disk(self) -> Server:
        disk = self.log_disks[self._next_disk]
        self._next_disk = (self._next_disk + 1) % len(self.log_disks)
        return disk

    def _group_commit_flush(self) -> typing.Generator[Event, typing.Any, None]:
        """Group commit: batch forced writes into shared disk writes.

        If a flush is already in progress, the caller's record joins the
        *next* batch and the caller waits for that batch's single disk
        write.  Otherwise the caller becomes the flush leader: it writes
        its own record, then keeps issuing one disk write per accumulated
        batch until no writers are pending.
        """
        if self._flushing:
            if self._pending is None:
                self._pending = Event(self.env)
            yield self._pending
            return
        self._flushing = True
        try:
            disk = self._pick_disk()
            self.group_flushes += 1
            yield from disk.serve(self.write_time_ms)
        except BaseException:
            self._flushing = False
            raise
        # The leader's record is durable now; stragglers that queued up
        # during the write are flushed by a background batch process so
        # the leader does not wait on their behalf.
        if self._pending is not None:
            self.env.process(self._flush_pending_batches(),
                             name=f"group-commit@{self.site_id}")
        else:
            self._flushing = False

    def _flush_pending_batches(
            self) -> typing.Generator[Event, typing.Any, None]:
        """One disk write per accumulated batch until none are pending."""
        try:
            while self._pending is not None:
                batch = self._pending
                self._pending = None
                disk = self._pick_disk()
                self.group_flushes += 1
                yield from disk.serve(self.write_time_ms)
                batch.succeed()
        finally:
            self._flushing = False

    # ------------------------------------------------------------------
    def txn_kinds(self, txn_id: int,
                  incarnation: int = -1) -> set[LogRecordKind]:
        """Record kinds this site's stable log holds for one incarnation.

        This is what a recovery process "reads from the WAL": the basis
        for decision-record lookup and the presumption rules.
        """
        records = self._by_txn.get((txn_id, incarnation))
        if not records:
            return set()
        return {record.kind for record in records}

    def forget_txn(self, txn_id: int, max_incarnation: int) -> None:
        """Drop the recovery index for a completed transaction.

        The simulation analogue of WAL truncation past a checkpoint: once
        a transaction has committed at every participant, no recovery
        process will ever look its records up again.  Long (soak) runs
        call this per commit so the index stays bounded by the in-flight
        population.  Aggregate tallies (``counts_by_kind``, forced and
        unforced counts) are unaffected.
        """
        for incarnation in range(-1, max_incarnation + 1):
            self._by_txn.pop((txn_id, incarnation), None)

    def compact(self) -> None:
        """Drop the whole recovery index (quiescent points only).

        Callers must guarantee no transaction is in flight at this site
        — the soak runner invokes this at drain barriers, where that
        holds by construction.
        """
        self._by_txn.clear()

    def counts_by_kind(self) -> dict[LogRecordKind, int]:
        """Number of records of each kind (forced and non-forced)."""
        return dict(self._counts)

    def __repr__(self) -> str:
        return (f"<LogManager site={self.site_id} forced={self.forced_count} "
                f"unforced={self.unforced_count}>")
