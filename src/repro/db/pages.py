"""Database pages and their placement.

The database is a collection of ``DBSize`` pages uniformly distributed
across all the sites (paper Section 4).  Placement is deterministic
round-robin striping: page ``p`` lives at site ``p mod num_sites``, and
within a site the pages are striped across the site's data disks.

Replication (``--replication R[:strategy]``) extends the strictly
partitioned layout with an available-copies scheme: every page keeps its
*primary* at ``p mod num_sites`` (so reads stay read-one-local and the
R=1 trajectory is byte-identical to the historical fast path) and gains
``R - 1`` secondary copies at sites derived deterministically from the
primary.  :class:`ReplicaDirectory` maps pages to their replica sets;
the write-all-available propagation itself lives in the transaction
layer.
"""

from __future__ import annotations

import dataclasses


class PageDirectory:
    """Maps pages to sites and to data disks within a site."""

    def __init__(self, db_size: int, num_sites: int,
                 num_data_disks: int) -> None:
        if db_size < num_sites:
            raise ValueError("db_size must be >= num_sites")
        if num_sites < 1 or num_data_disks < 1:
            raise ValueError("num_sites and num_data_disks must be >= 1")
        self.db_size = db_size
        self.num_sites = num_sites
        self.num_data_disks = num_data_disks

    def site_of(self, page: int) -> int:
        """The site holding ``page``."""
        self._check(page)
        return page % self.num_sites

    def disk_of(self, page: int) -> int:
        """The index of the data disk holding ``page`` at its site."""
        self._check(page)
        return (page // self.num_sites) % self.num_data_disks

    def pages_at(self, site: int) -> range:
        """All pages stored at ``site`` (as an iterable of page ids)."""
        if not 0 <= site < self.num_sites:
            raise ValueError(f"no such site {site}")
        return range(site, self.db_size, self.num_sites)

    def num_pages_at(self, site: int) -> int:
        """How many pages ``site`` stores."""
        return len(self.pages_at(site))

    def page_at(self, site: int, index: int) -> int:
        """The ``index``-th page stored at ``site``."""
        pages = self.pages_at(site)
        if not 0 <= index < len(pages):
            raise ValueError(f"site {site} has no page index {index}")
        return pages[index]

    def _check(self, page: int) -> None:
        if not 0 <= page < self.db_size:
            raise ValueError(f"page {page} outside database [0, {self.db_size})")

    def __repr__(self) -> str:
        return (f"PageDirectory(db_size={self.db_size}, "
                f"num_sites={self.num_sites})")


#: replica placement strategies accepted by ``--replication``.
REPLICATION_STRATEGIES = ("chain", "spread")


@dataclasses.dataclass(frozen=True)
class ReplicationSpec:
    """Parsed ``--replication R[:strategy]`` specification.

    ``factor`` is the number of copies of every page (1 = no
    replication, the historical partitioned layout).  ``strategy``
    picks the secondary placement: ``chain`` puts copies on the next
    ``R - 1`` sites ring-wise (neighbouring sites, typically the same
    DC under the dcs topology), ``spread`` spaces them evenly around
    the site ring (maximising DC diversity).
    """

    factor: int
    strategy: str = "chain"

    @classmethod
    def parse(cls, text: str) -> "ReplicationSpec":
        parts = text.split(":")
        if len(parts) > 2 or not parts[0]:
            raise ValueError(
                f"bad replication spec {text!r}; expected 'R' or "
                f"'R:<strategy>' with strategy one of "
                f"{', '.join(REPLICATION_STRATEGIES)}")
        try:
            factor = int(parts[0])
        except ValueError as error:
            raise ValueError(
                f"bad replication spec {text!r}: {error}") from None
        strategy = parts[1] if len(parts) == 2 else "chain"
        return cls(factor=factor, strategy=strategy)

    def validate(self, num_sites: int) -> None:
        if self.factor < 1:
            raise ValueError(
                f"replication factor must be >= 1, got {self.factor}")
        if self.factor > num_sites:
            raise ValueError(
                f"replication factor {self.factor} exceeds the "
                f"{num_sites} available sites")
        if self.strategy not in REPLICATION_STRATEGIES:
            raise ValueError(
                f"unknown replication strategy {self.strategy!r}; "
                f"choose from {', '.join(REPLICATION_STRATEGIES)}")

    @property
    def is_active(self) -> bool:
        return self.factor > 1

    def describe(self) -> str:
        if self.factor == 1:
            return "R=1 (partitioned, no replication)"
        return f"R={self.factor} ({self.strategy})"


class ReplicaDirectory(PageDirectory):
    """Page placement with an R-site replica set per page.

    The replica set of a page depends only on its *primary* site, so
    every page primaried at a site shares one replica set -- updates to
    a remote replica site batch into a single propagation message.
    Placement stays deterministic (no RNG): anyone can recompute a
    page's replica set after a crash, which is what available-copies
    recovery needs.
    """

    def __init__(self, db_size: int, num_sites: int, num_data_disks: int,
                 spec: ReplicationSpec) -> None:
        super().__init__(db_size, num_sites, num_data_disks)
        spec.validate(num_sites)
        self.spec = spec
        if spec.strategy == "spread":
            step = max(1, num_sites // spec.factor)
        else:
            step = 1
        self._replica_sets = tuple(
            self._place(primary, step, spec.factor, num_sites)
            for primary in range(num_sites))

    @staticmethod
    def _place(primary: int, step: int, factor: int,
               num_sites: int) -> tuple[int, ...]:
        sites: list[int] = [primary]
        seen = {primary}
        cursor = primary
        while len(sites) < factor:
            cursor += step
            site = cursor % num_sites
            if site in seen:
                # Stride collided with an existing copy (the factor does
                # not divide the ring evenly): fall through to the next
                # free site ring-wise.
                while site in seen:
                    site = (site + 1) % num_sites
                cursor = site
            seen.add(site)
            sites.append(site)
        return tuple(sites)

    def replica_sites(self, primary_site: int) -> tuple[int, ...]:
        """The replica set (primary first) for pages primaried at
        ``primary_site``."""
        return self._replica_sets[primary_site]

    def replicas_of(self, page: int) -> tuple[int, ...]:
        """All sites holding a copy of ``page`` (primary first)."""
        return self._replica_sets[self.site_of(page)]

    def __repr__(self) -> str:
        return (f"ReplicaDirectory(db_size={self.db_size}, "
                f"num_sites={self.num_sites}, spec={self.spec.describe()})")
