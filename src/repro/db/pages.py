"""Database pages and their placement.

The database is a collection of ``DBSize`` pages uniformly distributed
across all the sites (paper Section 4).  Placement is deterministic
round-robin striping: page ``p`` lives at site ``p mod num_sites``, and
within a site the pages are striped across the site's data disks.
"""

from __future__ import annotations


class PageDirectory:
    """Maps pages to sites and to data disks within a site."""

    def __init__(self, db_size: int, num_sites: int,
                 num_data_disks: int) -> None:
        if db_size < num_sites:
            raise ValueError("db_size must be >= num_sites")
        if num_sites < 1 or num_data_disks < 1:
            raise ValueError("num_sites and num_data_disks must be >= 1")
        self.db_size = db_size
        self.num_sites = num_sites
        self.num_data_disks = num_data_disks

    def site_of(self, page: int) -> int:
        """The site holding ``page``."""
        self._check(page)
        return page % self.num_sites

    def disk_of(self, page: int) -> int:
        """The index of the data disk holding ``page`` at its site."""
        self._check(page)
        return (page // self.num_sites) % self.num_data_disks

    def pages_at(self, site: int) -> range:
        """All pages stored at ``site`` (as an iterable of page ids)."""
        if not 0 <= site < self.num_sites:
            raise ValueError(f"no such site {site}")
        return range(site, self.db_size, self.num_sites)

    def num_pages_at(self, site: int) -> int:
        """How many pages ``site`` stores."""
        return len(self.pages_at(site))

    def page_at(self, site: int, index: int) -> int:
        """The ``index``-th page stored at ``site``."""
        pages = self.pages_at(site)
        if not 0 <= index < len(pages):
            raise ValueError(f"site {site} has no page index {index}")
        return pages[index]

    def _check(self, page: int) -> None:
        if not 0 <= page < self.db_size:
            raise ValueError(f"page {page} outside database [0, {self.db_size})")

    def __repr__(self) -> str:
        return (f"PageDirectory(db_size={self.db_size}, "
                f"num_sites={self.num_sites})")
