"""The distributed database system: wiring and top-level control.

:class:`DistributedSystem` assembles sites, network, deadlock detector,
workload generator, and a commit protocol into the closed queueing model
of the paper, runs it (warmup + measurement), and reports a
:class:`SimulationResult`.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.config import ModelParams, Topology, WorkloadMode
from repro.db.deadlock import WaitForGraph
from repro.db.network import Network
from repro.db.pages import PageDirectory, ReplicaDirectory
from repro.db.site import Site
from repro.db.topology import build_cost_model
from repro.db.transaction import (
    AbortReason,
    CohortAgent,
    CohortState,
    MasterAgent,
    Transaction,
    TransactionOutcome,
    TransactionSpec,
)
from repro.db.workload import WorkloadGenerator
from repro.metrics import MetricsCollector, ProtocolOverheads
from repro.obs.bus import EventBus
from repro.obs.events import (
    DeadlockVictim,
    EventKind,
    LenderAbort,
    TxnAbort,
    TxnArrive,
    TxnCommit,
    TxnDequeue,
    TxnRestart,
    TxnShed,
    TxnSubmit,
)
from repro.sim.engine import Environment
from repro.sim.events import Event
from repro.sim.rng import RandomStreams

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.admission import BoundedAdmissionQueue
    from repro.core.base import CommitProtocol
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultConfig, FaultTimeouts


@dataclasses.dataclass
class SimulationResult:
    """Everything a run reports (one point on one of the paper's curves)."""

    protocol: str
    mpl: int
    committed: int
    aborted: int
    elapsed_ms: float
    throughput: float          # transactions per second
    response_time_ms: float    # mean over committed transactions
    block_ratio: float
    borrow_ratio: float
    abort_ratio: float
    overheads: ProtocolOverheads
    aborts_by_reason: dict[str, int]
    deadlocks: int
    shelf_entries: int
    #: 90% batch-means relative half-width of the response-time mean
    #: (inf when too few batches -- use longer runs for tight CIs).
    response_ci_rel_half_width: float = float("inf")
    #: mean busy fraction per resource class over the measured period
    #: (all zero under infinite resources).
    utilization: dict[str, float] = dataclasses.field(default_factory=dict)

    def summary(self) -> str:
        return (f"{self.protocol:>8}  mpl={self.mpl:<3d} "
                f"thr={self.throughput:7.2f}/s  "
                f"resp={self.response_time_ms:8.1f}ms  "
                f"block={self.block_ratio:5.3f}  "
                f"borrow={self.borrow_ratio:5.3f}  "
                f"aborts={self.abort_ratio:5.3f}")


@dataclasses.dataclass
class OpenSimulationResult(SimulationResult):
    """A run under ``WorkloadMode.OPEN``: adds the open-system metrics.

    A subclass (rather than new fields on :class:`SimulationResult`) so
    closed-mode results keep their exact ``dataclasses.asdict`` shape --
    the golden-sweep fixture pins that byte-for-byte.  All fields must
    default because the parent ends with defaulted fields.
    """

    #: configured per-site Poisson arrival rate (txns/second).
    arrival_rate_tps: float = 0.0
    #: arrivals reaching the admission queues in the measured period.
    offered: int = 0
    #: arrivals dropped on a full queue.
    shed: int = 0
    shed_ratio: float = 0.0
    #: measured offered load, transactions/second (all sites combined).
    offered_per_second: float = 0.0
    queue_wait_mean_ms: float = 0.0
    queue_wait_p95_ms: float = 0.0
    response_p50_ms: float = 0.0
    response_p95_ms: float = 0.0
    response_p99_ms: float = 0.0
    #: time-averaged admission-queue backlog summed over sites.
    mean_queue_length: float = 0.0

    def summary(self) -> str:
        return (f"{self.protocol:>8}  rate={self.arrival_rate_tps:6.1f}/s "
                f"carried={self.throughput:7.2f}/s  "
                f"shed={self.shed_ratio:5.3f}  "
                f"qwait={self.queue_wait_mean_ms:7.1f}ms  "
                f"p50={self.response_p50_ms:7.1f}  "
                f"p95={self.response_p95_ms:7.1f}  "
                f"p99={self.response_p99_ms:7.1f}")


class DistributedSystem:
    """One configured instance of the simulated DBMS."""

    def __init__(self, params: ModelParams, protocol: "CommitProtocol",
                 seed: int | None = None,
                 faults: "FaultConfig | None" = None,
                 initial_time: float = 0.0,
                 percentile_sample_cap: int | None = None,
                 wal_retention: bool = True) -> None:
        params.validate()
        self.params = params
        self.protocol = protocol
        protocol.bind(self)
        #: retain the full WAL record history?  Soak runs turn this off:
        #: completed transactions' recovery-index entries are pruned per
        #: commit so memory stays bounded by the in-flight population.
        self.wal_retention = wal_retention
        # ``initial_time`` starts the kernel clock mid-stream: a soak
        # segment resumed from a checkpoint continues at the checkpointed
        # simulated time instead of 0.
        self.env = Environment(initial_time=initial_time)
        self.streams = RandomStreams(seed if seed is not None else params.seed)

        #: the instrumentation plane (docs/MODEL.md): every layer
        #: publishes typed events here; observers subscribe.
        self.bus = EventBus()
        total_slots = params.mpl * params.num_sites
        self.open_mode = params.workload_mode is WorkloadMode.OPEN
        self.metrics = MetricsCollector(
            self.env, total_slots,
            initial_response_estimate=params.initial_response_time_estimate(),
            open_system=self.open_mode,
            percentile_sample_cap=percentile_sample_cap)
        # Subscription order is semantic: metrics must see block/unblock
        # transitions before the admission controller acts on them.
        self.metrics.subscribe(self.bus)
        self.admission = None
        if params.admission_control:
            from repro.admission import HalfAndHalfController
            self.admission = HalfAndHalfController(
                self.env,
                blocked_fraction_limit=params.admission_blocked_limit,
                cancel=self._on_load_control_cancel)
            self.admission.subscribe(self.bus)
        self.wfg = WaitForGraph(on_victim=self._on_deadlock_victim)
        # Wire plane: no topology keeps the zero-consult hot path; the
        # ``uniform`` spec exercises the LanSwitch indirection
        # (byte-identical); multi-DC specs pay per-link wire costs with
        # all jitter/loss draws on dedicated ``topology-link-*`` RNG
        # substreams (covered by soak checkpoints automatically).
        self.cost_model = build_cost_model(
            params.network_topology, params.num_sites, self.streams)
        self.network = Network(self.env, params.msg_cpu_ms, bus=self.bus,
                               cost_model=self.cost_model)
        # Replication plane: None (or R=1) keeps the strictly
        # partitioned PageDirectory on the historical hot path -- the
        # golden-sweep fixture pins that byte-for-byte.  R>1 swaps in a
        # ReplicaDirectory and enables post-commit write-all-available
        # propagation (see CohortAgent._replicate_updates).
        replication = params.replication
        if replication is not None and replication.is_active:
            self.directory = ReplicaDirectory(
                params.db_size, params.num_sites, params.num_data_disks,
                replication)
            self.replicas: ReplicaDirectory | None = self.directory
        else:
            self.directory = PageDirectory(params.db_size, params.num_sites,
                                           params.num_data_disks)
            self.replicas = None
        #: replication counters (available-copies accounting).
        self.replica_updates_sent = 0
        self.replica_writes_skipped = 0
        self.sites = self._build_sites()
        self.workload = WorkloadGenerator(params, self.directory, self.streams)
        #: per-logical-site bounded admission queues (open mode only;
        #: empty list in closed mode so the attribute is always present).
        self.open_queues: list["BoundedAdmissionQueue"] = []
        if self.open_mode:
            from repro.admission import BoundedAdmissionQueue
            self.open_queues = [
                BoundedAdmissionQueue(self.env, params.admission_queue_limit)
                for _ in range(params.num_sites)]
        self._surprise_rng = self.streams.stream("surprise-aborts")
        self.transactions_started = 0
        self._started = False
        # Soak support (open mode): arrival shutoff + drain detection.
        self._arrivals_stopped = False
        self.admitted_total = 0
        self.completed_total = 0
        self._drain_event: Event | None = None
        #: fault plane: None unless an *active* FaultConfig is attached,
        #: so the healthy path stays byte-identical (golden-sweep pin).
        self.faults: "FaultInjector | None" = None
        self.fault_timeouts: "FaultTimeouts | None" = None
        if faults is not None:
            faults.validate()
            if faults.is_active:
                from repro.faults.injector import FaultInjector
                self.faults = FaultInjector(self, faults)
                self.fault_timeouts = faults.timeouts
                self.network.faults = self.faults

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_sites(self) -> list[Site]:
        params = self.params
        hooks = dict(
            on_lender_abort=self._on_lender_abort,
            bus=self.bus,
            wal_retention=self.wal_retention,
        )
        if params.topology is Topology.CENTRALIZED:
            # One physical site with the aggregate resources; logical
            # sites keep their identity for page placement and workload.
            site = Site(
                self.env, 0, self.directory, self.wfg,
                num_cpus=params.num_cpus * params.num_sites,
                num_data_disks=params.num_data_disks * params.num_sites,
                num_log_disks=params.num_log_disks * params.num_sites,
                page_cpu_ms=params.page_cpu_ms,
                page_disk_ms=params.page_disk_ms,
                infinite_resources=params.infinite_resources,
                lending_enabled=self.protocol.lending,
                group_commit=params.group_commit,
                **hooks)
            # Stripe: logical site s, logical disk d -> physical disk
            # s * num_data_disks + d, mirroring the distributed layout.
            directory = self.directory
            num_disks = params.num_data_disks
            site.data_disk_for = (  # type: ignore[method-assign]
                lambda page: site.data_disks[
                    directory.site_of(page) * num_disks
                    + directory.disk_of(page)])
            return [site]
        return [
            Site(self.env, site_id, self.directory, self.wfg,
                 num_cpus=params.num_cpus,
                 num_data_disks=params.num_data_disks,
                 num_log_disks=params.num_log_disks,
                 page_cpu_ms=params.page_cpu_ms,
                 page_disk_ms=params.page_disk_ms,
                 infinite_resources=params.infinite_resources,
                 lending_enabled=self.protocol.lending,
                 group_commit=params.group_commit,
                 **hooks)
            for site_id in range(params.num_sites)]

    def site_for(self, logical_site: int) -> Site:
        """Physical site hosting a logical site's pages and cohorts."""
        if self.params.topology is Topology.CENTRALIZED:
            return self.sites[0]
        return self.sites[logical_site]

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the workload processes (idempotent).

        Closed mode: ``mpl`` always-busy slots per site.  Open mode: one
        Poisson arrival process per site feeding its bounded admission
        queue, and ``mpl`` server slots per site draining it.
        """
        if self._started:
            return
        self._started = True
        if self.faults is not None:
            self.faults.start()
        if self.open_mode:
            for logical_site in range(self.params.num_sites):
                self.env.process(
                    self._open_arrivals(logical_site),
                    name=f"arrivals-{logical_site}")
                for slot in range(self.params.mpl):
                    self.env.process(
                        self._open_worker(logical_site),
                        name=f"server-{logical_site}.{slot}")
            return
        for logical_site in range(self.params.num_sites):
            for slot in range(self.params.mpl):
                self.env.process(
                    self._slot(logical_site),
                    name=f"slot-{logical_site}.{slot}")

    def _slot(self, origin_site: int):
        """One multiprogramming slot: submit, run, restart or replace."""
        env = self.env
        while True:
            spec = self.workload.generate(origin_site, env.now)
            yield from self._run_to_commit(spec, env.now)

    def _open_arrivals(self, origin_site: int):
        """Poisson arrival source for one site's admission queue.

        With a :class:`~repro.db.workload.RateCurve` configured, gaps are
        drawn at the *peak* modulated rate and each candidate arrival is
        thinned with probability ``factor_at(t) / peak_factor`` (Lewis &
        Shedler), giving an exact non-homogeneous Poisson process.  The
        curveless path keeps the historical draw sequence untouched.
        """
        env = self.env
        params = self.params
        # A dedicated substream per site: arrival timing is independent
        # of every workload-shape draw (common random numbers hold
        # across protocols, and closed-mode streams are untouched).
        rng = self.streams.indexed_stream("open-arrivals", origin_site)
        curve = params.rate_curve
        peak_factor = curve.peak_factor if curve is not None else 1.0
        mean_interarrival_ms = 1000.0 / (params.arrival_rate_tps
                                         * peak_factor)
        queue = self.open_queues[origin_site]
        bus = self.bus
        while True:
            yield env.timeout(rng.expovariate(1.0 / mean_interarrival_ms))
            if self._arrivals_stopped:
                return
            if curve is not None and \
                    rng.random() * peak_factor > curve.factor_at(env.now):
                continue  # thinned: no arrival at this candidate point
            spec = self.workload.generate(origin_site, env.now)
            admitted = queue.offer((spec, env.now))
            if admitted:
                self.admitted_total += 1
            if bus.has_subscribers(EventKind.TXN_ARRIVE):
                bus.publish(TxnArrive(env.now, origin_site, spec.txn_id,
                                      admitted))
            if not admitted and bus.has_subscribers(EventKind.TXN_SHED):
                bus.publish(TxnShed(env.now, origin_site, spec.txn_id,
                                    len(queue)))

    def _open_worker(self, origin_site: int):
        """One of a site's ``mpl`` server slots: drain the queue."""
        env = self.env
        queue = self.open_queues[origin_site]
        bus = self.bus
        while True:
            spec, arrival_time = yield queue.get()
            if bus.has_subscribers(EventKind.TXN_DEQUEUE):
                bus.publish(TxnDequeue(env.now, origin_site, spec.txn_id,
                                       env.now - arrival_time))
            # Response time is measured from *arrival*, so queue wait is
            # part of it -- the open-system latency the paper's closed
            # model cannot show.
            yield from self._run_to_commit(spec, arrival_time)

    def _run_to_commit(self, spec: TransactionSpec, first_submit: float):
        """Drive one transaction through retries until it commits."""
        env = self.env
        incarnation = 0
        while True:
            if self.admission is not None:
                yield from self.admission.admit()
            if self.faults is not None:
                # A down origin site cannot accept new transactions.
                yield from self.faults.wait_until_up(
                    self.site_for(spec.origin_site))
            txn = self._launch(spec, incarnation, first_submit)
            assert txn.master is not None
            outcome = yield txn.master.process
            if self.admission is not None:
                self.admission.release()
            if self.faults is not None:
                self.faults.untrack(txn)
                self._reap_stragglers(txn)
            if outcome is TransactionOutcome.COMMITTED:
                self.bus.publish(TxnCommit(env.now, txn))
                self.completed_total += 1
                if not self.wal_retention:
                    # WAL truncation: this transaction's recovery-index
                    # entries (all incarnations, every participant) are
                    # dead — no resolution path will look them up again.
                    for access in spec.accesses:
                        self.site_for(access.site_id).log_manager \
                            .forget_txn(spec.txn_id, incarnation)
                if self._drain_event is not None:
                    self._check_drained()
                return
            reason = txn.abort_reason or AbortReason.SURPRISE_VOTE
            self.bus.publish(TxnAbort(env.now, txn, reason))
            # "A transaction that is aborted is restarted after a
            # delay ... equal to the average response time."
            yield env.timeout(self.metrics.restart_delay())
            incarnation += 1

    def _launch(self, spec: TransactionSpec, incarnation: int,
                first_submit: float) -> Transaction:
        """Create agents and processes for one incarnation."""
        env = self.env
        txn = Transaction(spec, incarnation, first_submit, env.now)
        self.transactions_started += 1
        bus = self.bus
        if incarnation == 0:
            if bus.has_subscribers(EventKind.TXN_SUBMIT):
                bus.publish(TxnSubmit(
                    env.now, txn,
                    tuple(a.site_id for a in spec.accesses)))
        elif bus.has_subscribers(EventKind.TXN_RESTART):
            bus.publish(TxnRestart(
                env.now, txn, tuple(a.site_id for a in spec.accesses)))
        master = MasterAgent(self, txn, self.site_for(spec.origin_site))
        txn.master = master
        for access in spec.accesses:
            cohort = CohortAgent(self, txn, self.site_for(access.site_id),
                                 access)
            cohort.master = master
            txn.cohorts.append(cohort)
            master.cohorts.append(cohort)
        # Start cohort processes first so their inboxes are being read
        # when the master's STARTWORK messages arrive.
        for cohort in txn.cohorts:
            cohort.process = env.process(
                cohort.run(), name=f"{txn.name}-cohort@{cohort.site.site_id}")
        master.process = env.process(master.run(), name=f"{txn.name}-master")
        if self.faults is not None:
            self.faults.track(txn)
        return txn

    def _reap_stragglers(self, txn: Transaction) -> None:
        """After the master finished, kill cohorts still executing.

        Prepared/precommitted cohorts are left alone: they are either
        in-doubt (locks held until WAL replay) or mid-resolution, and
        terminate through the recovery machinery.  Anything earlier in
        its lifecycle is simply an orphan of an already-decided
        incarnation.
        """
        for cohort in txn.cohorts:
            if cohort.state in (CohortState.PREPARED,
                                CohortState.PRECOMMITTED):
                continue
            if cohort.process is not None and cohort.process.is_alive:
                cohort.process.interrupt(
                    txn.abort_reason or AbortReason.TIMEOUT)

    def abort_transaction(self, txn: Transaction, reason: AbortReason) -> None:
        """Kill an incarnation (deadlock victim or lender-abort cascade).

        Idempotent: repeated calls, and calls racing with normal
        completion, are ignored.
        """
        if txn.aborting or txn.outcome is not None:
            return
        txn.aborting = True
        txn.abort_reason = reason
        for process in txn.live_processes():
            process.interrupt(reason)

    # ------------------------------------------------------------------
    # Soak support: arrival shutoff, drain barrier, state capture
    # ------------------------------------------------------------------
    def stop_arrivals(self) -> None:
        """Stop admitting new open-system arrivals (soak barrier).

        Arrival processes exit at their next candidate arrival instant;
        transactions already admitted keep running to commit.
        """
        self._arrivals_stopped = True

    def when_drained(self) -> Event:
        """Event fired once every admitted transaction has committed.

        Meaningful after :meth:`stop_arrivals`; fires immediately if the
        system is already drained.
        """
        if self._drain_event is None:
            self._drain_event = Event(self.env)
            self._check_drained()
        return self._drain_event

    def _check_drained(self) -> None:
        event = self._drain_event
        if event is not None and not event.triggered \
                and self.completed_total >= self.admitted_total:
            self._drain_event = None
            event.succeed()

    def capture_soak_state(self) -> dict:
        """Picklable snapshot of all persistent state (soak checkpoint).

        Only valid at a quiescent drain barrier (``stop_arrivals`` +
        ``when_drained``): with no transaction in flight, everything
        that outlives a segment reduces to plain data — the kernel
        clock, RNG stream states, metric accumulators, admission-queue
        lifetime counters, and the workload's transaction-id cursor.
        """
        if not self.open_mode:
            raise RuntimeError("soak checkpointing requires open mode")
        if self.completed_total < self.admitted_total:
            raise RuntimeError(
                f"cannot checkpoint mid-flight: "
                f"{self.admitted_total - self.completed_total} admitted "
                f"transactions not yet committed")
        if not self.wal_retention:
            # Quiescent: sweep index entries that per-commit pruning
            # missed (e.g. a cohort's decision record written after its
            # master had already finished).
            for site in self.sites:
                site.log_manager.compact()
        return {
            "clock_ms": self.env.now,
            "rng": self.streams.capture_state(),
            "metrics": self.metrics.capture_state(),
            "workload": self.workload.capture_state(),
            "queues": [q.capture_state() for q in self.open_queues],
            "transactions_started": self.transactions_started,
            "admitted_total": self.admitted_total,
            "completed_total": self.completed_total,
        }

    def restore_soak_state(self, state: dict) -> None:
        """Adopt a :meth:`capture_soak_state` snapshot (before start()).

        The system must have been constructed with
        ``initial_time=state["clock_ms"]`` so every time-weighted
        accumulator anchors at the checkpointed clock.
        """
        if self._started:
            raise RuntimeError("restore_soak_state must precede start()")
        if self.env.now != state["clock_ms"]:
            raise RuntimeError(
                f"system clock {self.env.now} does not match checkpoint "
                f"clock {state['clock_ms']}; construct with "
                f"initial_time=clock_ms")
        self.streams.restore_state(state["rng"])
        self.metrics.restore_state(state["metrics"])
        self.workload.restore_state(state["workload"])
        for queue, queue_state in zip(self.open_queues, state["queues"]):
            queue.restore_state(queue_state)
        self.transactions_started = state["transactions_started"]
        self.admitted_total = state["admitted_total"]
        self.completed_total = state["completed_total"]

    # ------------------------------------------------------------------
    # Behavioural callbacks (these *act*; observation is on the bus)
    # ------------------------------------------------------------------
    def _on_deadlock_victim(self, txn: Transaction) -> None:
        if self.bus.has_subscribers(EventKind.DEADLOCK_VICTIM):
            self.bus.publish(DeadlockVictim(self.env.now, txn))
        self.abort_transaction(txn, AbortReason.DEADLOCK)

    def _on_load_control_cancel(self, txn: Transaction) -> None:
        self.abort_transaction(txn, AbortReason.LOAD_CONTROL)

    def _on_lender_abort(self, borrower: CohortAgent) -> None:
        if self.bus.has_subscribers(EventKind.LENDER_ABORT):
            self.bus.publish(LenderAbort(self.env.now, borrower))
        self.abort_transaction(borrower.txn, AbortReason.LENDER_ABORT)

    def surprise_no_vote(self) -> bool:
        """Draw whether a cohort surprise-votes NO (Experiment 6)."""
        prob = self.params.surprise_abort_prob
        return prob > 0 and self._surprise_rng.random() < prob

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, measured_transactions: int = 2000,
            warmup_transactions: int | None = None) -> SimulationResult:
        """Run the model and report measured-period statistics.

        ``warmup_transactions`` commits are discarded first (default:
        one tenth of the measured count).
        """
        if measured_transactions < 1:
            raise ValueError("measured_transactions must be >= 1")
        if warmup_transactions is None:
            warmup_transactions = max(measured_transactions // 10,
                                      self.params.mpl * self.params.num_sites)
        self.start()
        if warmup_transactions:
            self.env.run(until=self.metrics.when_committed(
                warmup_transactions))
        self.metrics.reset()
        for queue in self.open_queues:
            queue.reset_stats(self.env.now)
        self._snapshot_utilization()
        self.env.run(until=self.metrics.when_committed(
            measured_transactions))
        return self.result()

    def _resource_groups(self):
        cpus = [site.cpu for site in self.sites]
        data_disks = [d for site in self.sites for d in site.data_disks]
        log_disks = [d for site in self.sites
                     for d in site.log_manager.log_disks]
        return {"cpu": cpus, "data_disk": data_disks,
                "log_disk": log_disks}

    def _snapshot_utilization(self) -> None:
        self._util_baseline = {
            name: [r.busy_snapshot() for r in resources]
            for name, resources in self._resource_groups().items()}

    def _measured_utilization(self) -> dict[str, float]:
        baseline = getattr(self, "_util_baseline", None)
        elapsed = self.metrics.elapsed_ms
        if baseline is None or elapsed <= 0:
            return {}
        out = {}
        for name, resources in self._resource_groups().items():
            busy = sum(r.busy_snapshot() - start for r, start
                       in zip(resources, baseline[name]))
            capacity = sum(getattr(r, "capacity", 1) for r in resources)
            if capacity and capacity != float("inf"):
                out[name] = busy / (elapsed * capacity)
            else:
                out[name] = 0.0
        return out

    def result(self) -> SimulationResult:
        """Snapshot the measured-period statistics.

        Open mode returns an :class:`OpenSimulationResult`; closed mode
        keeps the exact historical :class:`SimulationResult` shape.
        """
        metrics = self.metrics
        overheads = ProtocolOverheads(
            execution_messages=metrics.exec_messages.mean,
            forced_writes=metrics.forced_writes.mean,
            commit_messages=metrics.commit_messages.mean)
        common: dict[str, typing.Any] = dict(
            protocol=self.protocol.name,
            mpl=self.params.mpl,
            committed=metrics.committed,
            aborted=metrics.aborted,
            elapsed_ms=metrics.elapsed_ms,
            throughput=metrics.throughput_per_second(),
            response_time_ms=metrics.response_times.mean,
            block_ratio=metrics.block_ratio(),
            borrow_ratio=metrics.borrow_ratio(),
            abort_ratio=metrics.abort_ratio(),
            overheads=overheads,
            aborts_by_reason={reason.value: count for reason, count
                              in metrics.aborts_by_reason.items()},
            deadlocks=self.wfg.deadlocks_found,
            shelf_entries=metrics.shelf_entries,
            response_ci_rel_half_width=(
                metrics.response_batches.relative_half_width(0.90)),
            utilization=self._measured_utilization())
        if not self.open_mode:
            return SimulationResult(**common)
        now = self.env.now
        return OpenSimulationResult(
            **common,
            arrival_rate_tps=self.params.arrival_rate_tps,
            offered=metrics.offered,
            shed=metrics.shed,
            shed_ratio=metrics.shed_ratio(),
            offered_per_second=metrics.offered_per_second(),
            queue_wait_mean_ms=metrics.queue_waits.mean,
            queue_wait_p95_ms=metrics.queue_wait_sample.percentile(0.95),
            response_p50_ms=metrics.response_sample.percentile(0.50),
            response_p95_ms=metrics.response_sample.percentile(0.95),
            response_p99_ms=metrics.response_sample.percentile(0.99),
            mean_queue_length=sum(q.length.average(now)
                                  for q in self.open_queues))

    def __repr__(self) -> str:
        return (f"<DistributedSystem {self.protocol.name} "
                f"sites={len(self.sites)} mpl={self.params.mpl}>")
