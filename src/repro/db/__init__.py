"""The distributed database system substrate.

This subpackage implements the closed queueing model of a distributed
DBMS from Section 4 of the paper: the partitioned database, per-site
physical resources (CPUs, data disks, log disks), distributed strict
two-phase locking with immediate global deadlock detection, write-ahead
logging with forced writes, the message-switch network, the
master/cohort transaction structure, and the closed workload generator.

The commit protocols themselves live in :mod:`repro.core`; they plug into
this substrate through the primitives exposed by
:class:`repro.db.transaction.MasterAgent` and
:class:`repro.db.transaction.CohortAgent`.
"""

from repro.db.deadlock import WaitForGraph
from repro.db.locks import LockManager, LockMode
from repro.db.messages import Message, MessageKind
from repro.db.network import Network
from repro.db.pages import PageDirectory
from repro.db.site import Site
from repro.db.system import DistributedSystem, SimulationResult
from repro.db.transaction import (
    AbortReason,
    CohortAgent,
    CohortState,
    MasterAgent,
    Transaction,
    TransactionOutcome,
    TransactionSpec,
)
from repro.db.wal import LogManager, LogRecordKind
from repro.db.workload import WorkloadGenerator

__all__ = [
    "AbortReason",
    "CohortAgent",
    "CohortState",
    "DistributedSystem",
    "LockManager",
    "LockMode",
    "LogManager",
    "LogRecordKind",
    "MasterAgent",
    "Message",
    "MessageKind",
    "Network",
    "PageDirectory",
    "SimulationResult",
    "Site",
    "Transaction",
    "TransactionOutcome",
    "TransactionSpec",
    "WaitForGraph",
    "WorkloadGenerator",
]
