"""Messages exchanged between masters and cohorts.

Message kinds cover the union of all implemented protocols.  Messages
are classified as *execution* messages (transaction setup and WORKDONE)
or *commit* messages (everything the commit protocol exchanges) so that
the overhead accounting of the paper's Tables 3 and 4 can be reproduced
exactly.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.transaction import Agent


class MessageKind(enum.Enum):
    """All message types used by the implemented commit protocols."""

    # Execution phase.
    STARTWORK = "STARTWORK"
    WORKDONE = "WORKDONE"
    # Voting phase (2PC, PA, PC, 3PC and OPT variants).
    PREPARE = "PREPARE"
    VOTE_YES = "VOTE_YES"
    VOTE_NO = "VOTE_NO"
    #: Read-only optimization: cohort had no updates, finishes in one phase.
    VOTE_READ_ONLY = "VOTE_READ_ONLY"
    # Precommit phase (3PC only).
    PRECOMMIT = "PRECOMMIT"
    PRECOMMIT_ACK = "PRECOMMIT_ACK"
    # Decision phase.
    COMMIT = "COMMIT"
    ABORT = "ABORT"
    ACK = "ACK"
    # Recovery (status inquiry by an in-doubt cohort, and its answer).
    STATUS_INQ = "STATUS_INQ"
    STATUS_ACK = "STATUS_ACK"
    # Paxos Commit (one instance per RM vote; 2a carries the vote to an
    # acceptor, 2b its acceptance back to the leader).
    PAXOS_2A = "PAXOS_2A"
    PAXOS_2B = "PAXOS_2B"
    #: replication: post-commit update propagation to a replica site.
    REPLICA_UPDATE = "REPLICA_UPDATE"

    @property
    def is_execution(self) -> bool:
        """True for messages belonging to the execution phase."""
        return self in (MessageKind.STARTWORK, MessageKind.WORKDONE)

    @property
    def is_commit(self) -> bool:
        """True for messages belonging to the commit protocol."""
        return not self.is_execution


_message_ids = itertools.count()


@dataclasses.dataclass
class Message:
    """One message between two transaction agents.

    ``sender`` and ``receiver`` are agent objects (master or cohort); the
    network resolves the receiver's site and inbox from them.  Messages
    carry the sending incarnation so stale traffic can be recognised by
    diagnostics (agents are per-incarnation objects, so correctness does
    not depend on it).
    """

    kind: MessageKind
    sender: "Agent"
    receiver: "Agent"
    txn_id: int
    incarnation: int
    payload: typing.Any = None
    msg_id: int = dataclasses.field(default_factory=lambda: next(_message_ids))

    @property
    def link(self) -> tuple[int, int]:
        """(sender site, receiver site) -- the wire this message rides."""
        return (self.sender.site.site_id, self.receiver.site.site_id)

    def __repr__(self) -> str:
        return (f"<Message {self.kind.value} txn={self.txn_id}."
                f"{self.incarnation} #{self.msg_id}>")
