"""Closed-system workload generation.

Per the paper (Section 4): the per-site multiprogramming level is fixed;
each transaction executes at ``DistDegree`` sites -- the originating site
plus ``DistDegree - 1`` others chosen at random; at each site the cohort
accesses a uniformly random number of pages between 0.5 and 1.5 times
``CohortSize``, chosen randomly from that site's pages; each page read is
updated with probability ``UpdateProb``.  Aborted transactions retain
their access sets across restarts.

Sites here are *logical* partitions: under the CENT (centralized)
topology every logical site maps to the single physical site, keeping the
workload identical so that only the effect of distribution is removed.
"""

from __future__ import annotations

import itertools
import typing

from repro.db.transaction import CohortAccess, TransactionSpec

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import ModelParams
    from repro.db.pages import PageDirectory
    from repro.sim.rng import RandomStreams


class WorkloadGenerator:
    """Draws :class:`TransactionSpec` objects for workload slots."""

    def __init__(self, params: "ModelParams", directory: "PageDirectory",
                 streams: "RandomStreams") -> None:
        self.params = params
        self.directory = directory
        self._site_rng = streams.stream("workload-sites")
        self._page_rng = streams.stream("workload-pages")
        self._size_rng = streams.stream("workload-sizes")
        self._update_rng = streams.stream("workload-updates")
        self._txn_ids = itertools.count(1)

    def generate(self, origin_site: int) -> TransactionSpec:
        """A fresh transaction spec originating at ``origin_site``."""
        params = self.params
        sites = [origin_site]
        if params.dist_degree > 1:
            others = [s for s in range(params.num_sites) if s != origin_site]
            sites.extend(self._site_rng.sample(
                others, params.dist_degree - 1))
        accesses = tuple(self._generate_access(site) for site in sites)
        return TransactionSpec(txn_id=next(self._txn_ids),
                               origin_site=origin_site,
                               accesses=accesses)

    def _generate_access(self, site: int) -> CohortAccess:
        params = self.params
        count = self._size_rng.randint(params.min_cohort_pages,
                                       params.max_cohort_pages)
        site_pages = self.directory.pages_at(site)
        pages = tuple(self._page_rng.sample(range(len(site_pages)), count))
        pages = tuple(site_pages[i] for i in pages)
        updates = tuple(self._update_rng.random() < params.update_prob
                        for _ in pages)
        return CohortAccess(site_id=site, pages=pages, updates=updates)

    def __repr__(self) -> str:
        return f"<WorkloadGenerator dist_degree={self.params.dist_degree}>"
