"""Workload generation: closed-system slots and open-system arrivals.

Per the paper (Section 4): the per-site multiprogramming level is fixed;
each transaction executes at ``DistDegree`` sites -- the originating site
plus ``DistDegree - 1`` others chosen at random; at each site the cohort
accesses a uniformly random number of pages between 0.5 and 1.5 times
``CohortSize``, chosen randomly from that site's pages; each page read is
updated with probability ``UpdateProb``.  Aborted transactions retain
their access sets across restarts.

Two extensions beyond the paper's closed uniform model:

- :class:`AccessSkew` selects *which* pages a cohort touches: uniform
  (the paper's model, and the default), a hot-spot rule (``b``% of
  accesses go to the first ``a``% of a site's pages), or a Zipf(theta)
  rank distribution.  Uniform skew takes the exact historical sampling
  path, so closed-mode trajectories stay byte-identical.
- Under ``WorkloadMode.OPEN`` the same generator feeds per-site Poisson
  arrival processes instead of fixed slots (see
  :meth:`repro.db.system.DistributedSystem.start`).

Sites here are *logical* partitions: under the CENT (centralized)
topology every logical site maps to the single physical site, keeping the
workload identical so that only the effect of distribution is removed.
"""

from __future__ import annotations

import bisect
import dataclasses
import enum
import itertools
import typing

from repro.db.transaction import CohortAccess, TransactionSpec

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    import random

    from repro.config import ModelParams
    from repro.db.pages import PageDirectory
    from repro.sim.rng import RandomStreams


class SkewKind(enum.Enum):
    """How a cohort's page accesses are distributed over its site."""

    #: Every page of the site is equally likely (the paper's model).
    UNIFORM = "uniform"
    #: ``hot_access_frac`` of accesses hit the first ``hot_page_frac``
    #: of the site's pages (the classic "b% of accesses to a% of data").
    HOTSPOT = "hotspot"
    #: Page ranks follow a Zipf distribution with parameter ``theta``
    #: (page slot 0 is the hottest).
    ZIPF = "zipf"


@dataclasses.dataclass(frozen=True)
class AccessSkew:
    """The page-access skew knob (CLI syntax in :meth:`parse`).

    Hot pages are the *low-numbered* page slots of each site, so the hot
    set is the same logical data across restarts, protocols, and seeds.
    """

    kind: SkewKind = SkewKind.UNIFORM
    #: hot-spot: fraction of each site's pages forming the hot set (the
    #: ``a%`` in "b% of accesses to a% of pages").
    hot_page_frac: float = 0.10
    #: hot-spot: fraction of accesses directed at the hot set (``b%``).
    hot_access_frac: float = 0.90
    #: Zipf exponent; larger is more skewed (0 degenerates to uniform).
    zipf_theta: float = 0.8

    @property
    def is_uniform(self) -> bool:
        return self.kind is SkewKind.UNIFORM

    def validate(self) -> None:
        if self.kind is SkewKind.HOTSPOT:
            if not 0.0 < self.hot_page_frac < 1.0:
                raise ValueError(
                    f"hot_page_frac must be in (0, 1), got "
                    f"{self.hot_page_frac}")
            if not 0.0 < self.hot_access_frac < 1.0:
                raise ValueError(
                    f"hot_access_frac must be in (0, 1), got "
                    f"{self.hot_access_frac}")
        elif self.kind is SkewKind.ZIPF:
            if self.zipf_theta <= 0:
                raise ValueError(
                    f"zipf_theta must be > 0, got {self.zipf_theta}")

    @classmethod
    def parse(cls, text: str) -> "AccessSkew":
        """Parse the CLI syntax.

        - ``uniform``
        - ``hotspot:<page%>:<access%>`` -- e.g. ``hotspot:10:90`` sends
          90% of accesses to the hottest 10% of each site's pages.
        - ``zipf:<theta>`` -- e.g. ``zipf:0.8``.
        """
        parts = text.strip().lower().split(":")
        kind = parts[0]
        try:
            if kind == "uniform" and len(parts) == 1:
                return cls()
            if kind == "hotspot" and len(parts) == 3:
                skew = cls(kind=SkewKind.HOTSPOT,
                           hot_page_frac=float(parts[1]) / 100.0,
                           hot_access_frac=float(parts[2]) / 100.0)
                skew.validate()
                return skew
            if kind == "zipf" and len(parts) == 2:
                skew = cls(kind=SkewKind.ZIPF, zipf_theta=float(parts[1]))
                skew.validate()
                return skew
        except ValueError as error:
            raise ValueError(f"bad skew spec {text!r}: {error}") from None
        raise ValueError(
            f"bad skew spec {text!r}; expected 'uniform', "
            f"'hotspot:<page%>:<access%>', or 'zipf:<theta>'")

    def describe(self) -> str:
        if self.kind is SkewKind.UNIFORM:
            return "uniform"
        if self.kind is SkewKind.HOTSPOT:
            return (f"hotspot {self.hot_access_frac:.0%} of accesses -> "
                    f"{self.hot_page_frac:.0%} of pages")
        return f"zipf theta={self.zipf_theta}"


class WorkloadGenerator:
    """Draws :class:`TransactionSpec` objects for workload slots."""

    def __init__(self, params: "ModelParams", directory: "PageDirectory",
                 streams: "RandomStreams") -> None:
        self.params = params
        self.directory = directory
        self._site_rng = streams.stream("workload-sites")
        self._page_rng = streams.stream("workload-pages")
        self._size_rng = streams.stream("workload-sizes")
        self._update_rng = streams.stream("workload-updates")
        self._txn_ids = itertools.count(1)
        self.skew = params.skew if params.skew is not None else AccessSkew()
        self.skew.validate()
        self._uniform = self.skew.is_uniform
        #: cache of Zipf cumulative weights, keyed by site page count.
        self._zipf_cum: dict[int, list[float]] = {}

    def generate(self, origin_site: int) -> TransactionSpec:
        """A fresh transaction spec originating at ``origin_site``."""
        params = self.params
        sites = [origin_site]
        if params.dist_degree > 1:
            others = [s for s in range(params.num_sites) if s != origin_site]
            sites.extend(self._site_rng.sample(
                others, params.dist_degree - 1))
        accesses = tuple(self._generate_access(site) for site in sites)
        return TransactionSpec(txn_id=next(self._txn_ids),
                               origin_site=origin_site,
                               accesses=accesses)

    def _generate_access(self, site: int) -> CohortAccess:
        params = self.params
        count = self._size_rng.randint(params.min_cohort_pages,
                                       params.max_cohort_pages)
        site_pages = self.directory.pages_at(site)
        # Uniform skew takes the historical path untouched: closed-mode
        # trajectories are pinned byte-identical by the golden fixture.
        if self._uniform:
            indexes = self._page_rng.sample(range(len(site_pages)), count)
        else:
            indexes = self._sample_skewed(len(site_pages), count)
        pages = tuple(site_pages[i] for i in indexes)
        updates = tuple(self._update_rng.random() < params.update_prob
                        for _ in pages)
        return CohortAccess(site_id=site, pages=pages, updates=updates)

    # ------------------------------------------------------------------
    # Skewed page sampling (distinct page slots, rejection on repeats)
    # ------------------------------------------------------------------
    def _sample_skewed(self, num_pages: int, count: int) -> list[int]:
        if count > num_pages:
            raise ValueError(
                f"cannot sample {count} distinct pages from a site "
                f"holding {num_pages}")
        if self.skew.kind is SkewKind.HOTSPOT:
            return self._sample_hotspot(num_pages, count)
        return self._sample_zipf(num_pages, count)

    def _sample_hotspot(self, num_pages: int, count: int) -> list[int]:
        rng = self._page_rng
        skew = self.skew
        hot = max(1, min(num_pages - 1, round(num_pages
                                              * skew.hot_page_frac)))
        chosen: set[int] = set()
        out: list[int] = []
        hot_left = hot
        cold_left = num_pages - hot
        while len(out) < count:
            want_hot = rng.random() < skew.hot_access_frac
            # Redirect once a region is exhausted so the loop always
            # terminates (e.g. 9 distinct pages from a 6-page hot set).
            if want_hot and hot_left == 0:
                want_hot = False
            elif not want_hot and cold_left == 0:
                want_hot = True
            slot = (rng.randrange(hot) if want_hot
                    else rng.randrange(hot, num_pages))
            if slot in chosen:
                continue
            chosen.add(slot)
            out.append(slot)
            if want_hot:
                hot_left -= 1
            else:
                cold_left -= 1
        return out

    def _sample_zipf(self, num_pages: int, count: int) -> list[int]:
        rng = self._page_rng
        cum = self._zipf_cum.get(num_pages)
        if cum is None:
            theta = self.skew.zipf_theta
            total = 0.0
            cum = []
            for rank in range(1, num_pages + 1):
                total += rank ** -theta
                cum.append(total)
            self._zipf_cum[num_pages] = cum
        total = cum[-1]
        chosen: set[int] = set()
        out: list[int] = []
        while len(out) < count:
            slot = bisect.bisect_left(cum, rng.random() * total)
            if slot in chosen:
                continue
            chosen.add(slot)
            out.append(slot)
        return out

    def __repr__(self) -> str:
        return (f"<WorkloadGenerator dist_degree={self.params.dist_degree} "
                f"skew={self.skew.describe()}>")
