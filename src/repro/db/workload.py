"""Workload generation: closed-system slots and open-system arrivals.

Per the paper (Section 4): the per-site multiprogramming level is fixed;
each transaction executes at ``DistDegree`` sites -- the originating site
plus ``DistDegree - 1`` others chosen at random; at each site the cohort
accesses a uniformly random number of pages between 0.5 and 1.5 times
``CohortSize``, chosen randomly from that site's pages; each page read is
updated with probability ``UpdateProb``.  Aborted transactions retain
their access sets across restarts.

Extensions beyond the paper's closed uniform model:

- :class:`AccessSkew` selects *which* pages a cohort touches: uniform
  (the paper's model, and the default), a hot-spot rule (``b``% of
  accesses go to the first ``a``% of a site's pages), or a Zipf(theta)
  rank distribution.  Uniform skew takes the exact historical sampling
  path, so closed-mode trajectories stay byte-identical.  A hot spot may
  *drift*: with ``drift_period_s`` set, the hot set rotates through the
  site's pages once per period (a moving hotspot, for soak runs under
  non-stationary load).
- Under ``WorkloadMode.OPEN`` the same generator feeds per-site Poisson
  arrival processes instead of fixed slots (see
  :meth:`repro.db.system.DistributedSystem.start`).
- :class:`RateCurve` modulates the open-system arrival rate over
  simulated time (constant, diurnal sinusoid, or piecewise steps);
  arrivals are drawn at the peak rate and thinned (Lewis & Shedler) so
  the process stays exactly Poisson at the instantaneous rate.

Sites here are *logical* partitions: under the CENT (centralized)
topology every logical site maps to the single physical site, keeping the
workload identical so that only the effect of distribution is removed.
"""

from __future__ import annotations

import bisect
import dataclasses
import enum
import math
import typing

from repro.db.transaction import CohortAccess, TransactionSpec

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    import random

    from repro.config import ModelParams
    from repro.db.pages import PageDirectory
    from repro.sim.rng import RandomStreams


class SkewKind(enum.Enum):
    """How a cohort's page accesses are distributed over its site."""

    #: Every page of the site is equally likely (the paper's model).
    UNIFORM = "uniform"
    #: ``hot_access_frac`` of accesses hit the first ``hot_page_frac``
    #: of the site's pages (the classic "b% of accesses to a% of data").
    HOTSPOT = "hotspot"
    #: Page ranks follow a Zipf distribution with parameter ``theta``
    #: (page slot 0 is the hottest).
    ZIPF = "zipf"


@dataclasses.dataclass(frozen=True)
class AccessSkew:
    """The page-access skew knob (CLI syntax in :meth:`parse`).

    Hot pages are the *low-numbered* page slots of each site, so the hot
    set is the same logical data across restarts, protocols, and seeds.
    """

    kind: SkewKind = SkewKind.UNIFORM
    #: hot-spot: fraction of each site's pages forming the hot set (the
    #: ``a%`` in "b% of accesses to a% of pages").
    hot_page_frac: float = 0.10
    #: hot-spot: fraction of accesses directed at the hot set (``b%``).
    hot_access_frac: float = 0.90
    #: Zipf exponent; larger is more skewed (0 degenerates to uniform).
    zipf_theta: float = 0.8
    #: hot-spot: seconds for the hot set to rotate once through the
    #: site's pages (0 = stationary, the default).  The rotation is a
    #: bijection on page slots, so sampled sets stay distinct.
    drift_period_s: float = 0.0

    @property
    def is_uniform(self) -> bool:
        return self.kind is SkewKind.UNIFORM

    def validate(self) -> None:
        if self.drift_period_s < 0:
            raise ValueError(
                f"drift_period_s must be >= 0, got {self.drift_period_s}")
        if self.drift_period_s and self.kind is not SkewKind.HOTSPOT:
            raise ValueError("drift_period_s only applies to hotspot skew")
        if self.kind is SkewKind.HOTSPOT:
            if not 0.0 < self.hot_page_frac < 1.0:
                raise ValueError(
                    f"hot_page_frac must be in (0, 1), got "
                    f"{self.hot_page_frac}")
            if not 0.0 < self.hot_access_frac < 1.0:
                raise ValueError(
                    f"hot_access_frac must be in (0, 1), got "
                    f"{self.hot_access_frac}")
        elif self.kind is SkewKind.ZIPF:
            if self.zipf_theta <= 0:
                raise ValueError(
                    f"zipf_theta must be > 0, got {self.zipf_theta}")

    @classmethod
    def parse(cls, text: str) -> "AccessSkew":
        """Parse the CLI syntax.

        - ``uniform``
        - ``hotspot:<page%>:<access%>`` -- e.g. ``hotspot:10:90`` sends
          90% of accesses to the hottest 10% of each site's pages.
        - ``hotspot:<page%>:<access%>:<drift_s>`` -- same, with the hot
          set rotating once through the pages every ``drift_s`` seconds.
        - ``zipf:<theta>`` -- e.g. ``zipf:0.8``.
        """
        parts = text.strip().lower().split(":")
        kind = parts[0]
        try:
            if kind == "uniform" and len(parts) == 1:
                return cls()
            if kind == "hotspot" and len(parts) in (3, 4):
                drift = float(parts[3]) if len(parts) == 4 else 0.0
                skew = cls(kind=SkewKind.HOTSPOT,
                           hot_page_frac=float(parts[1]) / 100.0,
                           hot_access_frac=float(parts[2]) / 100.0,
                           drift_period_s=drift)
                skew.validate()
                return skew
            if kind == "zipf" and len(parts) == 2:
                skew = cls(kind=SkewKind.ZIPF, zipf_theta=float(parts[1]))
                skew.validate()
                return skew
        except ValueError as error:
            raise ValueError(f"bad skew spec {text!r}: {error}") from None
        raise ValueError(
            f"bad skew spec {text!r}; expected 'uniform', "
            f"'hotspot:<page%>:<access%>[:<drift_s>]', or 'zipf:<theta>'")

    def describe(self) -> str:
        if self.kind is SkewKind.UNIFORM:
            return "uniform"
        if self.kind is SkewKind.HOTSPOT:
            base = (f"hotspot {self.hot_access_frac:.0%} of accesses -> "
                    f"{self.hot_page_frac:.0%} of pages")
            if self.drift_period_s:
                base += f", drifting every {self.drift_period_s:g}s"
            return base
        return f"zipf theta={self.zipf_theta}"


class RateCurveKind(enum.Enum):
    """Shape of the arrival-rate modulation over simulated time."""

    CONSTANT = "constant"
    #: ``factor(t) = 1 + amplitude * sin(2*pi * t / period)`` -- a smooth
    #: diurnal-style swing around the base rate.
    DIURNAL = "diurnal"
    #: piecewise-constant factors switching at given times.
    STEPS = "steps"


@dataclasses.dataclass(frozen=True)
class RateCurve:
    """Time-varying multiplier on the open-system arrival rate.

    The base ``arrival_rate_tps`` is multiplied by :meth:`factor_at`;
    arrival processes draw exponential gaps at ``peak_factor`` times the
    base rate and thin each candidate with probability
    ``factor_at(t) / peak_factor`` (Lewis & Shedler 1979), which yields
    an exact non-homogeneous Poisson process.
    """

    kind: RateCurveKind = RateCurveKind.CONSTANT
    #: diurnal: seconds per full sinusoid cycle.
    period_s: float = 3600.0
    #: diurnal: swing around the base rate, in [0, 1].
    amplitude: float = 0.5
    #: steps: ((start_s, factor), ...) sorted by start time; the factor
    #: before the first breakpoint is 1.0.
    steps: tuple[tuple[float, float], ...] = ()

    def validate(self) -> None:
        if self.kind is RateCurveKind.DIURNAL:
            if self.period_s <= 0:
                raise ValueError(
                    f"period_s must be > 0, got {self.period_s}")
            if not 0.0 <= self.amplitude <= 1.0:
                raise ValueError(
                    f"amplitude must be in [0, 1], got {self.amplitude}")
        elif self.kind is RateCurveKind.STEPS:
            if not self.steps:
                raise ValueError("steps curve needs at least one step")
            last = -1.0
            for start_s, factor in self.steps:
                if start_s < 0:
                    raise ValueError(
                        f"step start must be >= 0, got {start_s}")
                if start_s <= last:
                    raise ValueError("step starts must be increasing")
                if factor < 0:
                    raise ValueError(
                        f"step factor must be >= 0, got {factor}")
                last = start_s
            if self.peak_factor == 0:
                raise ValueError("at least one step factor must be > 0")

    @property
    def peak_factor(self) -> float:
        """The supremum of :meth:`factor_at` (the thinning envelope)."""
        if self.kind is RateCurveKind.CONSTANT:
            return 1.0
        if self.kind is RateCurveKind.DIURNAL:
            return 1.0 + self.amplitude
        factors = [f for _, f in self.steps]
        if self.steps and self.steps[0][0] > 0:
            factors.append(1.0)  # implicit pre-first-step factor
        return max(factors)

    def factor_at(self, now_ms: float) -> float:
        """The rate multiplier at simulated time ``now_ms``."""
        if self.kind is RateCurveKind.CONSTANT:
            return 1.0
        now_s = now_ms / 1000.0
        if self.kind is RateCurveKind.DIURNAL:
            return 1.0 + self.amplitude * math.sin(
                2.0 * math.pi * now_s / self.period_s)
        factor = 1.0
        for start_s, step_factor in self.steps:
            if now_s < start_s:
                break
            factor = step_factor
        return factor

    @classmethod
    def parse(cls, text: str) -> "RateCurve":
        """Parse the CLI syntax.

        - ``constant``
        - ``diurnal:<period_s>:<amplitude>`` -- e.g. ``diurnal:3600:0.5``
        - ``steps:<t_s>=<factor>,...`` -- e.g. ``steps:0=1,600=2,1200=0.5``
        """
        parts = text.strip().lower().split(":", 1)
        kind = parts[0]
        try:
            if kind == "constant" and len(parts) == 1:
                return cls()
            if kind == "diurnal" and len(parts) == 2:
                period_s, amplitude = parts[1].split(":")
                curve = cls(kind=RateCurveKind.DIURNAL,
                            period_s=float(period_s),
                            amplitude=float(amplitude))
                curve.validate()
                return curve
            if kind == "steps" and len(parts) == 2:
                steps = []
                for chunk in parts[1].split(","):
                    start_s, factor = chunk.split("=")
                    steps.append((float(start_s), float(factor)))
                curve = cls(kind=RateCurveKind.STEPS, steps=tuple(steps))
                curve.validate()
                return curve
        except ValueError as error:
            raise ValueError(
                f"bad rate-curve spec {text!r}: {error}") from None
        raise ValueError(
            f"bad rate-curve spec {text!r}; expected 'constant', "
            f"'diurnal:<period_s>:<amplitude>', or "
            f"'steps:<t_s>=<factor>,...'")

    def describe(self) -> str:
        if self.kind is RateCurveKind.CONSTANT:
            return "constant"
        if self.kind is RateCurveKind.DIURNAL:
            return (f"diurnal period={self.period_s:g}s "
                    f"amplitude={self.amplitude:g}")
        return "steps " + ",".join(
            f"{t:g}s={f:g}" for t, f in self.steps)


class WorkloadGenerator:
    """Draws :class:`TransactionSpec` objects for workload slots."""

    def __init__(self, params: "ModelParams", directory: "PageDirectory",
                 streams: "RandomStreams") -> None:
        self.params = params
        self.directory = directory
        self._site_rng = streams.stream("workload-sites")
        self._page_rng = streams.stream("workload-pages")
        self._size_rng = streams.stream("workload-sizes")
        self._update_rng = streams.stream("workload-updates")
        self._next_txn_id = 1
        self.skew = params.skew if params.skew is not None else AccessSkew()
        self.skew.validate()
        self._uniform = self.skew.is_uniform
        #: cache of Zipf cumulative weights, keyed by site page count.
        self._zipf_cum: dict[int, list[float]] = {}
        #: site -> datacenter map when cohort placement prefers the
        #: master's own DC; None keeps the paper's uniform choice (and
        #: the historical draw sequence, pinned by the golden fixture).
        self._placement: tuple[int, ...] | None = None
        if params.prefer_local_cohorts \
                and params.network_topology is not None:
            self._placement = params.network_topology.placement(
                params.num_sites)

    def generate(self, origin_site: int,
                 now: float = 0.0) -> TransactionSpec:
        """A fresh transaction spec originating at ``origin_site``.

        ``now`` is the simulated time of the draw (milliseconds); it only
        matters under a drifting hotspot, where it positions the hot set.
        """
        params = self.params
        sites = [origin_site]
        if params.dist_degree > 1:
            others = [s for s in range(params.num_sites) if s != origin_site]
            if self._placement is None:
                sites.extend(self._site_rng.sample(
                    others, params.dist_degree - 1))
            else:
                sites.extend(self._sample_local_first(
                    origin_site, others, params.dist_degree - 1))
        accesses = tuple(self._generate_access(site, now) for site in sites)
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        return TransactionSpec(txn_id=txn_id,
                               origin_site=origin_site,
                               accesses=accesses)

    def _sample_local_first(self, origin_site: int, others: list[int],
                            count: int) -> list[int]:
        """Cohort sites drawn from the master's own datacenter first.

        A transaction still spans ``dist_degree`` distinct sites; only
        the *placement* changes: same-DC candidates are exhausted before
        any cross-DC site is drawn, minimizing cross-DC commit rounds.
        """
        placement = self._placement
        assert placement is not None
        home_dc = placement[origin_site]
        local = [s for s in others if placement[s] == home_dc]
        remote = [s for s in others if placement[s] != home_dc]
        take_local = min(count, len(local))
        sites = self._site_rng.sample(local, take_local)
        if take_local < count:
            sites.extend(self._site_rng.sample(remote, count - take_local))
        return sites

    def _generate_access(self, site: int, now: float) -> CohortAccess:
        params = self.params
        count = self._size_rng.randint(params.min_cohort_pages,
                                       params.max_cohort_pages)
        site_pages = self.directory.pages_at(site)
        # Uniform skew takes the historical path untouched: closed-mode
        # trajectories are pinned byte-identical by the golden fixture.
        if self._uniform:
            indexes = self._page_rng.sample(range(len(site_pages)), count)
        else:
            indexes = self._sample_skewed(len(site_pages), count, now)
        pages = tuple(site_pages[i] for i in indexes)
        updates = tuple(self._update_rng.random() < params.update_prob
                        for _ in pages)
        return CohortAccess(site_id=site, pages=pages, updates=updates)

    # ------------------------------------------------------------------
    # Skewed page sampling (distinct page slots, rejection on repeats)
    # ------------------------------------------------------------------
    def _sample_skewed(self, num_pages: int, count: int,
                       now: float = 0.0) -> list[int]:
        if count > num_pages:
            raise ValueError(
                f"cannot sample {count} distinct pages from a site "
                f"holding {num_pages}")
        if self.skew.kind is SkewKind.HOTSPOT:
            return self._sample_hotspot(num_pages, count, now)
        return self._sample_zipf(num_pages, count)

    def _sample_hotspot(self, num_pages: int, count: int,
                        now: float = 0.0) -> list[int]:
        rng = self._page_rng
        skew = self.skew
        hot = max(1, min(num_pages - 1, round(num_pages
                                              * skew.hot_page_frac)))
        # Moving hotspot: rotate every sampled slot by a time-dependent
        # offset.  Rotation is a bijection on [0, num_pages), so the
        # distinctness bookkeeping below is unaffected; the hot set is
        # [offset, offset + hot) mod num_pages at time ``now``.
        offset = 0
        if skew.drift_period_s > 0:
            period_ms = skew.drift_period_s * 1000.0
            offset = int(num_pages * ((now / period_ms) % 1.0)) % num_pages
        chosen: set[int] = set()
        out: list[int] = []
        hot_left = hot
        cold_left = num_pages - hot
        while len(out) < count:
            want_hot = rng.random() < skew.hot_access_frac
            # Redirect once a region is exhausted so the loop always
            # terminates (e.g. 9 distinct pages from a 6-page hot set).
            if want_hot and hot_left == 0:
                want_hot = False
            elif not want_hot and cold_left == 0:
                want_hot = True
            slot = (rng.randrange(hot) if want_hot
                    else rng.randrange(hot, num_pages))
            if slot in chosen:
                continue
            chosen.add(slot)
            if offset:
                out.append((slot + offset) % num_pages)
            else:
                out.append(slot)
            if want_hot:
                hot_left -= 1
            else:
                cold_left -= 1
        return out

    def _sample_zipf(self, num_pages: int, count: int) -> list[int]:
        rng = self._page_rng
        cum = self._zipf_cum.get(num_pages)
        if cum is None:
            theta = self.skew.zipf_theta
            total = 0.0
            cum = []
            for rank in range(1, num_pages + 1):
                total += rank ** -theta
                cum.append(total)
            self._zipf_cum[num_pages] = cum
        total = cum[-1]
        chosen: set[int] = set()
        out: list[int] = []
        while len(out) < count:
            slot = bisect.bisect_left(cum, rng.random() * total)
            if slot in chosen:
                continue
            chosen.add(slot)
            out.append(slot)
        return out

    # ------------------------------------------------------------------
    # Soak checkpointing (RNG stream states live in RandomStreams)
    # ------------------------------------------------------------------
    def capture_state(self) -> dict:
        """Picklable generator state beyond the RNG streams."""
        return {"next_txn_id": self._next_txn_id}

    def restore_state(self, state: dict) -> None:
        self._next_txn_id = state["next_txn_id"]

    def __repr__(self) -> str:
        return (f"<WorkloadGenerator dist_degree={self.params.dist_degree} "
                f"skew={self.skew.describe()}>")
