"""One site of the distributed database.

Physical resources per the paper's Section 4: ``NumCPUs`` processors
sharing a single queue (message processing at higher priority than data
processing), ``NumDataDisks`` data disks with individual queues, and
``NumLogDisks`` log disks.  Under ``infinite_resources`` (Experiment 2)
every resource becomes an infinite server: no queueing, full service
times.
"""

from __future__ import annotations

import typing

from repro.db.locks import LockManager
from repro.db.wal import LogManager
from repro.sim.events import Event
from repro.sim.resources import (
    PRIORITY_DATA,
    PRIORITY_MESSAGE,
    InfiniteServer,
    PriorityResource,
    Resource,
    Server,
)

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.deadlock import WaitForGraph
    from repro.db.pages import PageDirectory
    from repro.sim.engine import Environment


class Site:
    """A database site: resources + lock manager + log manager."""

    def __init__(self, env: "Environment", site_id: int,
                 directory: "PageDirectory",
                 wait_for_graph: "WaitForGraph",
                 num_cpus: int, num_data_disks: int, num_log_disks: int,
                 page_cpu_ms: float, page_disk_ms: float,
                 infinite_resources: bool = False,
                 lending_enabled: bool = False,
                 group_commit: bool = False,
                 wal_retention: bool = True,
                 on_lender_abort=None, bus=None) -> None:
        self.env = env
        self.site_id = site_id
        self.directory = directory
        self.page_cpu_ms = page_cpu_ms
        self.page_disk_ms = page_disk_ms
        self.infinite_resources = infinite_resources

        if infinite_resources:
            self.cpu: Server = InfiniteServer(env, name=f"cpu@{site_id}")
            self.data_disks: list[Server] = [
                InfiniteServer(env, name=f"disk{d}@{site_id}")
                for d in range(num_data_disks)]
            log_disks: list[Server] = [
                InfiniteServer(env, name=f"log{d}@{site_id}")
                for d in range(num_log_disks)]
        else:
            self.cpu = PriorityResource(env, capacity=num_cpus,
                                        name=f"cpu@{site_id}")
            self.data_disks = [
                Resource(env, capacity=1, name=f"disk{d}@{site_id}")
                for d in range(num_data_disks)]
            log_disks = [
                Resource(env, capacity=1, name=f"log{d}@{site_id}")
                for d in range(num_log_disks)]

        self.log_manager = LogManager(env, site_id, log_disks,
                                      write_time_ms=page_disk_ms,
                                      group_commit=group_commit,
                                      bus=bus,
                                      retain_records=wal_retention)
        self.lock_manager = LockManager(
            env, site_id, wait_for_graph,
            lending_enabled=lending_enabled,
            on_lender_abort=on_lender_abort,
            bus=bus)

        #: operational flag; only the fault injector ever clears it.
        self.up = True

        # Counters.
        self.pages_read = 0
        self.pages_written = 0

    # ------------------------------------------------------------------
    # Service coroutines
    # ------------------------------------------------------------------
    def data_disk_for(self, page: int) -> Server:
        """The data disk storing ``page`` at this site."""
        return self.data_disks[self.directory.disk_of(page)]

    def read_page(self, page: int) -> typing.Generator[Event, typing.Any, None]:
        """Disk read followed by CPU processing (paper Section 4.1)."""
        self.pages_read += 1
        yield from self.data_disk_for(page).serve(self.page_disk_ms)
        yield from self.cpu.serve(self.page_cpu_ms, priority=PRIORITY_DATA)

    def write_page(self, page: int) -> typing.Generator[Event, typing.Any, None]:
        """Deferred data-page write (asynchronous, disk only)."""
        self.pages_written += 1
        yield from self.data_disk_for(page).serve(self.page_disk_ms)

    def message_cpu(self, duration: float,
                    ) -> typing.Generator[Event, typing.Any, None]:
        """CPU time for sending or receiving one message."""
        yield from self.cpu.serve(duration, priority=PRIORITY_MESSAGE)

    def __repr__(self) -> str:
        return f"<Site {self.site_id}>"
