"""The communication network.

Per the paper (Section 4): "The communication network is simply modeled
as a switch that routes messages since we assume a local area network
that has high bandwidth.  However, the CPU overheads of message transfer
... are taken into account at both the sending and the receiving sites."

Consequences implemented here:

- wire latency is zero *by default*;
- the *sender's process* is occupied while the send-side MsgCPU cost is
  paid (at message priority);
- the receive-side MsgCPU cost is paid by an independent delivery
  process at the receiving site, after which the message lands in the
  receiver's inbox;
- messages between agents at the *same site* are free (they correspond
  to the master talking to its local cohort) and are delivered
  immediately.

The wire itself is pluggable: a :class:`repro.db.topology.CostModel`
(``cost_model``) is consulted per remote message for wire delay and
stochastic wire loss.  ``None`` keeps the paper's zero-cost switch on
the historical hot path; :class:`repro.db.topology.LanSwitch` is
byte-identical through the indirection; a
:class:`repro.db.topology.WanTopology` pays per-link latency and
classifies traffic as intra- vs cross-datacenter.  The fault injector
*composes with* (stacks on top of) the cost model: topology delay and
loss model the healthy wire, injected delay and loss the unhealthy one,
and a site that crashes while a cross-DC message is in flight still
drops it once the link delay has elapsed (see ``_deliver``).
"""

from __future__ import annotations

import typing

from repro.db.messages import MessageKind
from repro.obs.bus import EventBus
from repro.obs.events import EventKind, MessageDeliver, MessageSend, MsgDrop
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.messages import Message
    from repro.db.site import Site
    from repro.db.topology import CostModel
    from repro.db.transaction import Agent
    from repro.faults.injector import FaultInjector
    from repro.sim.engine import Environment


class Network:
    """Message switch with per-end CPU costs and a pluggable wire."""

    def __init__(self, env: "Environment", msg_cpu_ms: float,
                 bus: EventBus | None = None,
                 cost_model: "CostModel | None" = None) -> None:
        self.env = env
        self.msg_cpu_ms = msg_cpu_ms
        #: instrumentation plane; a standalone network gets a private bus.
        self.bus = bus if bus is not None else EventBus()
        #: fault plane; None means perfectly reliable (the default).
        self.faults: "FaultInjector | None" = None
        #: wire plane; None means the paper's free zero-latency switch.
        self.cost: "CostModel | None" = cost_model
        self.messages_sent = 0
        self.local_messages = 0
        self.messages_dropped = 0
        #: drop counts keyed by :class:`repro.obs.events.MsgDrop` reason
        #: (``loss`` / ``topology_loss`` / ``site_down`` / ``partition``).
        self.drops_by_reason: dict[str, int] = {}
        #: remote messages whose link crossed datacenters (topology runs
        #: with a site->DC placement only; otherwise both stay 0).
        self.cross_dc_messages = 0
        self.intra_dc_messages = 0

    def send(self, message: "Message",
             ) -> typing.Generator[Event, typing.Any, None]:
        """Coroutine run by the sender: pay the send cost, then route.

        Local messages (sender and receiver on the same site) cost
        nothing and are delivered synchronously.
        """
        sender_site = message.sender.site
        receiver_site = message.receiver.site
        bus = self.bus
        if sender_site.site_id == receiver_site.site_id:
            self.local_messages += 1
            if bus.has_subscribers(EventKind.MSG_SEND):
                bus.publish(MessageSend(
                    self.env.now, message, local=True,
                    link=(sender_site.site_id, sender_site.site_id)))
            if bus.has_subscribers(EventKind.MSG_DELIVER):
                bus.publish(MessageDeliver(
                    self.env.now, message,
                    link=(sender_site.site_id, sender_site.site_id)))
            message.receiver.inbox.put(message)
            return
        self.messages_sent += 1
        cost = self.cost
        src = sender_site.site_id
        dst = receiver_site.site_id
        delay = 0.0
        cross_dc = False
        if cost is not None:
            if cost.placement is not None:
                cross_dc = cost.placement[src] != cost.placement[dst]
                if cross_dc:
                    self.cross_dc_messages += 1
                    message.sender.txn.messages_cross_dc += 1
                else:
                    self.intra_dc_messages += 1
            delay = cost.wire_delay(src, dst)
        if bus.has_subscribers(EventKind.MSG_SEND):
            bus.publish(MessageSend(self.env.now, message, local=False,
                                    link=(src, dst), delay_ms=delay,
                                    cross_dc=cross_dc))
        self._count_for_transaction(message)
        yield from sender_site.message_cpu(self.msg_cpu_ms)
        faults = self.faults
        if faults is not None and faults.link_severed(src, dst):
            # The link group between the two datacenters is severed:
            # the message dies on the cut after the sender paid its
            # MsgCPU (there is no wire to lose it on).
            self._drop(message, "partition")
            return
        if cost is not None and cost.lose(src, dst):
            # Lost on the (healthy) wire: the sender already paid its
            # MsgCPU; nobody pays the receive cost.
            self._drop(message, "topology_loss")
            return
        if faults is not None:
            # Fault plane stacks on the wire: injected loss/delay apply
            # in addition to whatever the topology charged.
            if faults.lose_message(message):
                self._drop(message, "loss")
                return
            delay += faults.delay_message(message)
        # Receive side: an independent process so the sender is not
        # blocked while the receiver's CPU works through its queue.
        self.env.process(self._deliver(message, delay, cross_dc),
                         name=f"deliver-{message.kind.value}")

    def _deliver(self, message: "Message", delay: float = 0.0,
                 cross_dc: bool = False,
                 ) -> typing.Generator[Event, typing.Any, None]:
        if delay > 0.0:
            # Wire latency: topology link delay plus injected delay
            # (the paper's healthy switch has neither).
            yield self.env.timeout(delay)
        faults = self.faults
        if faults is not None and not message.receiver.site.up:
            # Receiver's site is down: nobody pays the receive cost.
            # For a cross-DC message this check runs *after* the link
            # delay elapsed, so a mid-flight crash still eats it.
            self._drop(message, "site_down")
            return
        if faults is not None and faults.link_severed(*message.link):
            # The partition started while the message was in flight:
            # it never makes it across the cut.
            self._drop(message, "partition")
            return
        yield from message.receiver.site.message_cpu(self.msg_cpu_ms)
        if faults is not None and not message.receiver.site.up:
            # Site crashed while the receive CPU was being served; the
            # in-flight delivery is part of the lost volatile state.
            self._drop(message, "site_down")
            return
        if self.bus.has_subscribers(EventKind.MSG_DELIVER):
            self.bus.publish(MessageDeliver(self.env.now, message,
                                            link=message.link,
                                            delay_ms=delay,
                                            cross_dc=cross_dc))
        message.receiver.inbox.put(message)

    def _drop(self, message: "Message", reason: str) -> None:
        self.messages_dropped += 1
        self.drops_by_reason[reason] = \
            self.drops_by_reason.get(reason, 0) + 1
        if self.faults is not None and reason != "topology_loss":
            # The injector's counter only attributes drops the fault
            # plane caused (injected loss, crashed receivers, severed
            # links); topology wire loss is the healthy WAN's doing and
            # shows up in ``drops_by_reason`` only.
            self.faults.messages_dropped += 1
        if self.bus.has_subscribers(EventKind.MSG_DROP):
            self.bus.publish(MsgDrop(self.env.now, message, reason))

    def path_open(self, site_a: "Site", site_b: "Site") -> bool:
        """Whether messages can currently flow between the two sites
        (no region fault plan has severed their datacenters' links)."""
        faults = self.faults
        return faults is None or not faults.link_severed(
            site_a.site_id, site_b.site_id)

    def inquiry_round_trip(self, agent: "Agent", remote_site: "Site",
                           ) -> typing.Generator[Event, typing.Any, bool]:
        """One status-inquiry round trip from ``agent`` to ``remote_site``.

        Recovery traffic (STATUS_INQ out, STATUS_ACK back) is modeled as
        a reliable exchange that bypasses inboxes: the caller decides
        what the answer *means* by reading the remote site's WAL, so no
        payload needs routing, but the message costs are real -- two
        commit-class messages, four MsgCPU services, and (under a WAN
        cost model) one full wire round trip, so recovery time scales
        with the link RTT.  Inquiries are retried by the protocol layer
        until they succeed, which is why they are not subject to
        stochastic loss (topology or injected).

        Returns True when the exchange completed.  A severed link group
        is the one thing retrying cannot ride over: a leg that crosses a
        live partition fails (the sender still pays its MsgCPU, and a
        ``partition`` drop is recorded), the round trip returns False,
        and the caller must back off and retry after heal.
        """
        from repro.db.messages import Message, MessageKind

        own_site = agent.site
        bus = self.bus
        if own_site.site_id == remote_site.site_id:
            # Same-site inquiry (master probing its local cohort's WAL):
            # free and instantaneous, but still two traced messages.
            self.local_messages += 2
            send_subs = bus.has_subscribers(EventKind.MSG_SEND)
            deliver_subs = bus.has_subscribers(EventKind.MSG_DELIVER)
            if send_subs or deliver_subs:
                link = (own_site.site_id, own_site.site_id)
                for kind in (MessageKind.STATUS_INQ,
                             MessageKind.STATUS_ACK):
                    message = Message(kind, agent, agent, agent.txn.txn_id,
                                      agent.txn.incarnation)
                    if send_subs:
                        bus.publish(MessageSend(self.env.now, message,
                                                local=True, link=link))
                    if deliver_subs:
                        bus.publish(MessageDeliver(self.env.now, message,
                                                   link=link))
            return True
        cost = self.cost
        for kind in (MessageKind.STATUS_INQ, MessageKind.STATUS_ACK):
            message = Message(kind, agent, agent, agent.txn.txn_id,
                              agent.txn.incarnation)
            self.messages_sent += 1
            agent.txn.messages_commit += 1
            send_site, recv_site = ((own_site, remote_site)
                                    if kind is MessageKind.STATUS_INQ
                                    else (remote_site, own_site))
            src = send_site.site_id
            dst = recv_site.site_id
            delay = 0.0
            cross_dc = False
            if cost is not None:
                if cost.placement is not None:
                    cross_dc = cost.placement[src] != cost.placement[dst]
                    if cross_dc:
                        self.cross_dc_messages += 1
                        agent.txn.messages_cross_dc += 1
                    else:
                        self.intra_dc_messages += 1
                delay = cost.wire_delay(src, dst)
            if bus.has_subscribers(EventKind.MSG_SEND):
                bus.publish(MessageSend(self.env.now, message, local=False,
                                        link=(src, dst), delay_ms=delay,
                                        cross_dc=cross_dc))
            yield from send_site.message_cpu(self.msg_cpu_ms)
            if self.faults is not None \
                    and self.faults.link_severed(src, dst):
                # The inquiry leg cannot cross a severed link group:
                # the exchange fails and the caller backs off.
                self._drop(message, "partition")
                return False
            if delay > 0.0:
                yield self.env.timeout(delay)
            yield from recv_site.message_cpu(self.msg_cpu_ms)
            if bus.has_subscribers(EventKind.MSG_DELIVER):
                bus.publish(MessageDeliver(self.env.now, message,
                                           link=(src, dst), delay_ms=delay,
                                           cross_dc=cross_dc))
        return True

    @staticmethod
    def _count_for_transaction(message: "Message") -> None:
        if message.kind is MessageKind.REPLICA_UPDATE:
            # Post-commit replica propagation: accounted on the system's
            # replication counters, not the transaction's commit-protocol
            # overheads (which reproduce the paper's Tables 3 and 4).
            return
        txn = message.sender.txn
        if message.kind.is_execution:
            txn.messages_execution += 1
        else:
            txn.messages_commit += 1

    def __repr__(self) -> str:
        return f"<Network msg_cpu={self.msg_cpu_ms}ms sent={self.messages_sent}>"
