"""Global deadlock detection.

The paper's model (Section 4.2): "both global and local deadlock
detection is immediate, that is, a deadlock is detected as soon as a lock
conflict occurs and a cycle is formed.  The youngest transaction in the
cycle is restarted to resolve the deadlock."  Detection overheads are not
charged (they would be identical across commit protocols).

The graph is over *transactions*; lock managers at every site feed it
edges keyed by the lock request that created them, so edges can be
retracted precisely when requests are granted or withdrawn.
"""

from __future__ import annotations

import collections
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.locks import LockRequest
    from repro.db.transaction import Transaction

#: Called with the chosen victim when a cycle is found.
VictimCallback = typing.Callable[["Transaction"], None]


class WaitForGraph:
    """Transaction wait-for graph with immediate cycle detection."""

    def __init__(self, on_victim: VictimCallback) -> None:
        self._on_victim = on_victim
        #: request -> (waiter, blockers) as last registered.
        self._edges: dict["LockRequest",
                          tuple["Transaction", frozenset["Transaction"]]] = {}
        #: adjacency with multiplicity: waiter -> {blocker: count}.
        self._adjacency: dict["Transaction",
                              collections.Counter] = {}
        self.deadlocks_found = 0

    # ------------------------------------------------------------------
    # Edge maintenance (driven by the lock managers)
    # ------------------------------------------------------------------
    def set_edges(self, request: "LockRequest", waiter: "Transaction",
                  blockers: set["Transaction"]) -> None:
        """Replace the wait-for edges contributed by ``request``."""
        self.clear_edges(request)
        # Deterministic ordering: set iteration order depends on object
        # addresses, which would make victim selection (and therefore
        # whole runs) irreproducible.
        ordered = sorted((b for b in blockers if b is not waiter),
                         key=lambda t: (t.txn_id, t.incarnation))
        if not ordered:
            return
        self._edges[request] = (waiter, frozenset(ordered))
        counter = self._adjacency.setdefault(waiter, collections.Counter())
        for blocker in ordered:
            counter[blocker] += 1

    def clear_edges(self, request: "LockRequest") -> None:
        """Retract the edges contributed by ``request`` (if any)."""
        edge = self._edges.pop(request, None)
        if edge is None:
            return
        waiter, blockers = edge
        counter = self._adjacency.get(waiter)
        if counter is None:
            return
        for blocker in blockers:
            counter[blocker] -= 1
            if counter[blocker] <= 0:
                del counter[blocker]
        if not counter:
            del self._adjacency[waiter]

    def remove_transaction_waits(self, txn: "Transaction") -> None:
        """Retract every edge where ``txn`` is the waiter."""
        stale = [request for request, (waiter, _) in self._edges.items()
                 if waiter is txn]
        for request in stale:
            self.clear_edges(request)

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def check_for_deadlock(self, txn: "Transaction") -> list["Transaction"]:
        """Detect and resolve every cycle through ``txn``.

        Returns the list of victims restarted (usually empty or one).
        Transactions already flagged ``aborting`` are treated as absent:
        their locks are about to be released, so cycles through them are
        already broken.
        """
        victims: list["Transaction"] = []
        while True:
            cycle = self._find_cycle(txn)
            if cycle is None:
                return victims
            self.deadlocks_found += 1
            victim = self._choose_victim(cycle)
            victims.append(victim)
            # The callback must set ``victim.aborting`` (and does, via
            # DistributedSystem.abort_transaction); that is what makes
            # the loop terminate and later DFS passes skip the victim.
            self._on_victim(victim)
            if not victim.aborting:  # pragma: no cover - contract guard
                raise RuntimeError(
                    "on_victim callback failed to mark the victim aborting")
            if victim is txn:
                return victims

    def _find_cycle(self, start: "Transaction",
                    ) -> list["Transaction"] | None:
        """A cycle through ``start``, or None.  Iterative DFS."""
        if start.aborting or start not in self._adjacency:
            return None
        path: list["Transaction"] = [start]
        # Stack of iterators over each path node's blockers.
        stack = [iter(self._neighbours(start))]
        visited: set["Transaction"] = {start}
        while stack:
            try:
                nxt = next(stack[-1])
            except StopIteration:
                stack.pop()
                path.pop()
                continue
            if nxt is start:
                return list(path)
            if nxt in visited or nxt.aborting:
                continue
            visited.add(nxt)
            path.append(nxt)
            stack.append(iter(self._neighbours(nxt)))
        return None

    def _neighbours(self, txn: "Transaction",
                    ) -> typing.Iterator["Transaction"]:
        counter = self._adjacency.get(txn)
        if counter is None:
            return iter(())
        return iter([t for t in counter if not t.aborting])

    @staticmethod
    def _choose_victim(cycle: list["Transaction"]) -> "Transaction":
        """The youngest transaction in the cycle (paper Section 4.2)."""
        victim = cycle[0]
        for txn in cycle[1:]:
            if txn.is_younger_than(victim):
                victim = txn
        return victim

    # ------------------------------------------------------------------
    # Introspection (tests and diagnostics)
    # ------------------------------------------------------------------
    def blockers_of(self, txn: "Transaction") -> set["Transaction"]:
        counter = self._adjacency.get(txn)
        return set(counter) if counter else set()

    @property
    def num_waiting(self) -> int:
        return len(self._adjacency)

    def __repr__(self) -> str:
        return (f"<WaitForGraph waiters={len(self._adjacency)} "
                f"deadlocks={self.deadlocks_found}>")
