"""Transactions, masters, and cohorts.

The paper's transaction model (Section 2): one *master* process at the
originating site plus ``DistDegree`` *cohort* processes, one per
execution site (the master's site always hosts one cohort).  Cohorts
perform the data accesses; the master coordinates startup and runs the
commit protocol.

Agents (:class:`MasterAgent`, :class:`CohortAgent`) are created fresh for
every incarnation of a transaction, so messages and events can never leak
across restarts.
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.db.messages import Message, MessageKind
from repro.db.wal import LogRecordKind
from repro.obs.events import (
    CommitPhase,
    EventKind,
    PhaseTransition,
    ReplicaPropagate,
    ShelfEnter,
    TimeoutFired,
)
from repro.sim.events import Event
from repro.sim.process import Interrupt, Process
from repro.sim.resources import Store

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.locks import LockMode
    from repro.db.site import Site
    from repro.db.system import DistributedSystem


class TransactionOutcome(enum.Enum):
    """Terminal state of one incarnation."""

    COMMITTED = "committed"
    ABORTED = "aborted"


class AbortReason(enum.Enum):
    """Why an incarnation aborted."""

    #: Chosen as deadlock victim (youngest in the cycle).
    DEADLOCK = "deadlock"
    #: A lender this transaction borrowed uncommitted data from aborted.
    LENDER_ABORT = "lender_abort"
    #: A cohort voted NO in the voting phase (Experiment 6).
    SURPRISE_VOTE = "surprise_vote"
    #: Cancelled by the Half-and-Half load controller (extension).
    LOAD_CONTROL = "load_control"
    #: A protocol-layer timeout expired (fault injection only).
    TIMEOUT = "timeout"
    #: The hosting site crashed (fault injection only).
    SITE_CRASH = "site_crash"


class CohortState(enum.Enum):
    """Lifecycle of a cohort (paper Sections 2.1 and 3)."""

    IDLE = "idle"                  # waiting for STARTWORK
    EXECUTING = "executing"        # performing data accesses
    ON_SHELF = "on_shelf"          # OPT: done, but lenders unresolved
    EXECUTED = "executed"          # WORKDONE sent, awaiting PREPARE
    PREPARED = "prepared"          # voted YES; update locks retained
    PRECOMMITTED = "precommitted"  # 3PC only
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclasses.dataclass(frozen=True)
class CohortAccess:
    """The fixed access set of one cohort (stable across restarts)."""

    site_id: int
    pages: tuple[int, ...]
    #: parallel to ``pages``: True where the page will be updated.
    updates: tuple[bool, ...]

    def __post_init__(self) -> None:
        if len(self.pages) != len(self.updates):
            raise ValueError("pages and updates must have equal length")
        if len(set(self.pages)) != len(self.pages):
            raise ValueError("duplicate pages in a cohort access set")

    @property
    def updated_pages(self) -> tuple[int, ...]:
        return tuple(p for p, u in zip(self.pages, self.updates) if u)

    @property
    def is_read_only(self) -> bool:
        return not any(self.updates)


@dataclasses.dataclass(frozen=True)
class TransactionSpec:
    """The immutable description of a transaction.

    A restarted transaction "makes the same data accesses as its
    original incarnation" (paper Section 4), so the spec survives
    restarts while agents do not.
    """

    txn_id: int
    origin_site: int
    accesses: tuple[CohortAccess, ...]

    def __post_init__(self) -> None:
        if not self.accesses:
            raise ValueError("a transaction needs at least one cohort")
        if self.accesses[0].site_id != self.origin_site:
            raise ValueError("first cohort must be at the origin site")
        sites = [a.site_id for a in self.accesses]
        if len(set(sites)) != len(sites):
            raise ValueError("one cohort per site")

    @property
    def total_pages(self) -> int:
        return sum(len(a.pages) for a in self.accesses)


class Transaction:
    """One incarnation of a transaction.

    Identity is ``(spec.txn_id, incarnation)``; the workload slot keeps
    the spec and bumps the incarnation on every restart.
    """

    def __init__(self, spec: TransactionSpec, incarnation: int,
                 first_submit_time: float, submit_time: float) -> None:
        self.spec = spec
        self.incarnation = incarnation
        #: submission time of incarnation 0 (response time baseline).
        self.first_submit_time = first_submit_time
        #: submission time of this incarnation (deadlock victim age).
        self.submit_time = submit_time
        self.master: MasterAgent | None = None
        self.cohorts: list[CohortAgent] = []
        self.outcome: TransactionOutcome | None = None
        self.abort_reason: AbortReason | None = None
        #: set synchronously when an abort is initiated so that deadlock
        #: detection and lending never double-abort an incarnation.
        self.aborting = False
        # Per-incarnation counters (reported on completion).
        self.pages_borrowed = 0
        self.messages_execution = 0
        self.messages_commit = 0
        #: remote messages that crossed datacenters (0 unless a multi-DC
        #: network topology is active; subset of the two counts above).
        self.messages_cross_dc = 0
        self.forced_writes = 0
        #: number of this transaction's cohorts currently blocked on a lock.
        self.blocked_cohorts = 0

    @property
    def txn_id(self) -> int:
        return self.spec.txn_id

    @property
    def name(self) -> str:
        return f"T{self.spec.txn_id}.{self.incarnation}"

    def is_younger_than(self, other: "Transaction") -> bool:
        """Deadlock victim ordering: later incarnation submit time wins."""
        return (self.submit_time, self.txn_id) > (other.submit_time,
                                                  other.txn_id)

    def live_processes(self) -> list[Process]:
        """All still-running agent processes of this incarnation."""
        processes = []
        if self.master is not None and self.master.process is not None \
                and self.master.process.is_alive:
            processes.append(self.master.process)
        for cohort in self.cohorts:
            if cohort.process is not None and cohort.process.is_alive:
                processes.append(cohort.process)
        return processes

    def __repr__(self) -> str:
        return f"<Transaction {self.name}>"


class Agent:
    """Common behaviour of masters and cohorts.

    Exposes the primitives the commit protocols are written against:
    ``send`` (charged message transfer), ``recv`` (inbox), ``force_log``
    and ``log`` (WAL records).
    """

    def __init__(self, system: "DistributedSystem", txn: Transaction,
                 site: "Site") -> None:
        self.system = system
        self.txn = txn
        self.site = site
        self.inbox = Store(system.env, name=f"{self!r}-inbox")
        self.process: Process | None = None
        #: a get() that timed out without a message; recv_wait reuses it
        #: so the mailbox's FIFO getter queue never holds stale entries
        #: that would swallow later messages.
        self._pending_get: Event | None = None

    # ------------------------------------------------------------------
    # Protocol primitives
    # ------------------------------------------------------------------
    def send(self, kind: MessageKind, receiver: "Agent",
             payload: typing.Any = None,
             ) -> typing.Generator[Event, typing.Any, None]:
        """Coroutine: send a message (pays MsgCPU at both ends)."""
        message = Message(kind=kind, sender=self, receiver=receiver,
                          txn_id=self.txn.txn_id,
                          incarnation=self.txn.incarnation, payload=payload)
        yield from self.system.network.send(message)

    def recv(self) -> Event:
        """Event yielding the next inbox message."""
        return self.inbox.get()

    def recv_wait(self, timeout_ms: float, wait: str = "recv",
                  ) -> typing.Generator[Event, typing.Any, typing.Any]:
        """Coroutine: next inbox message, or None after ``timeout_ms``.

        Used by every protocol wait while faults are active.  A timed-out
        get is kept (``_pending_get``) and reused by the next call: the
        Store queues getters FIFO, so abandoning a get would let a later
        message resolve the stale event and vanish.
        """
        get = self._pending_get
        if get is None:
            get = self.inbox.get()
        if not get.triggered:
            deadline = self.env.timeout(timeout_ms)
            yield self.env.any_of([get, deadline])
        if get.triggered:
            self._pending_get = None
            return get.value
        self._pending_get = get
        bus = self.system.bus
        if bus.has_subscribers(EventKind.TIMEOUT_FIRED):
            bus.publish(TimeoutFired(self.env.now, self, wait, timeout_ms))
        return None

    def force_log(self, kind: LogRecordKind,
                  ) -> typing.Generator[Event, typing.Any, None]:
        """Coroutine: force-write a log record at this agent's site."""
        self.txn.forced_writes += 1
        yield from self.site.log_manager.force_write(
            kind, self.txn.txn_id, incarnation=self.txn.incarnation)

    def log(self, kind: LogRecordKind) -> None:
        """Write a non-forced log record (free, per the paper's model)."""
        self.site.log_manager.write(kind, self.txn.txn_id,
                                    incarnation=self.txn.incarnation)

    @property
    def env(self):
        return self.system.env


class CohortAgent(Agent):
    """A cohort: executes data accesses at one site, then follows the
    commit protocol's cohort side."""

    def __init__(self, system: "DistributedSystem", txn: Transaction,
                 site: "Site", access: CohortAccess) -> None:
        super().__init__(system, txn, site)
        self.access = access
        self.state = CohortState.IDLE
        self.master: MasterAgent | None = None
        # Lock bookkeeping (maintained by the site's LockManager).
        self.held_locks: dict[int, "LockMode"] = {}
        self.lending_pages: set[int] = set()
        #: prepared cohorts whose uncommitted data this cohort borrowed.
        self.lenders: set["CohortAgent"] = set()
        self._shelf_event: Event | None = None
        #: when this incarnation entered the in-doubt state (blocked-lock
        #: accounting under faults; None while not in doubt).
        self.in_doubt_since: float | None = None

    # ------------------------------------------------------------------
    # OPT lending bookkeeping (driven by the LockManager)
    # ------------------------------------------------------------------
    def add_lender(self, lender: "CohortAgent") -> None:
        self.lenders.add(lender)

    def remove_lender(self, lender: "CohortAgent") -> None:
        """A lender committed; release the shelf if it was the last one."""
        self.lenders.discard(lender)
        if not self.lenders and self._shelf_event is not None \
                and not self._shelf_event.triggered:
            self._shelf_event.succeed()

    def wait_off_shelf(self) -> typing.Generator[Event, typing.Any, None]:
        """Coroutine: block until every lender has resolved (OPT shelf).

        "The borrower is now put on the shelf ... it has to wait until
        the lender receives its global decision." (paper Section 3)
        """
        if not self.lenders:
            return
        self.state = CohortState.ON_SHELF
        self.system.bus.publish(ShelfEnter(self.env.now, self))
        self._shelf_event = Event(self.env)
        try:
            yield self._shelf_event
        finally:
            self._shelf_event = None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> typing.Generator[Event, typing.Any, None]:
        """The cohort's life: STARTWORK, data accesses, shelf, WORKDONE,
        then the protocol's cohort commit phase."""
        try:
            ft = self.system.fault_timeouts
            if ft is None:
                message = yield self.recv()
            else:
                message = yield from self.recv_wait(ft.work_timeout_ms,
                                                    wait="startwork")
                if message is None:
                    # STARTWORK was lost; nothing was done, just quit.
                    self.state = CohortState.ABORTED
                    self.site.lock_manager.finalize(self, committed=False)
                    return
            assert message.kind is MessageKind.STARTWORK
            self.state = CohortState.EXECUTING
            yield from self._execute()
            # OPT: a borrower may not report completion while any of its
            # lenders is unresolved.
            yield from self.wait_off_shelf()
            self.state = CohortState.EXECUTED
            assert self.master is not None
            yield from self.system.protocol.send_workdone(self)
            yield from self.system.protocol.cohort_commit(self)
        except Interrupt as interrupt:
            self._cleanup_after_interrupt(interrupt.cause)

    def _execute(self) -> typing.Generator[Event, typing.Any, None]:
        """Perform the access sequence: lock, disk read, CPU, per page."""
        from repro.db.locks import LockMode  # local import: cycle guard
        for page, is_update in zip(self.access.pages, self.access.updates):
            mode = LockMode.UPDATE if is_update else LockMode.READ
            yield from self.site.lock_manager.acquire(self, page, mode)
            yield from self.site.read_page(page)

    # ------------------------------------------------------------------
    # Decision implementation
    # ------------------------------------------------------------------
    def implement_commit(self) -> None:
        """Release locks and schedule the deferred update writes."""
        self.state = CohortState.COMMITTED
        self.site.lock_manager.finalize(self, committed=True)
        updated = self.access.updated_pages
        if updated:
            self.env.process(self._flush_updates(updated),
                             name=f"{self.txn.name}-flush@{self.site.site_id}")
            if self.system.replicas is not None:
                self.env.process(
                    self._replicate_updates(updated),
                    name=f"{self.txn.name}-replicate@{self.site.site_id}")

    def implement_abort(self) -> None:
        """Release locks; deferred updates are simply discarded."""
        self.state = CohortState.ABORTED
        self.site.lock_manager.finalize(self, committed=False)

    def _flush_updates(self, pages: tuple[int, ...],
                       ) -> typing.Generator[Event, typing.Any, None]:
        """Asynchronously write updated pages back to the data disks.

        These writes happen after commit, off the transaction's response
        path, but they do consume data-disk capacity (paper Section 4.1).
        """
        for page in pages:
            yield from self.site.write_page(page)

    def _replicate_updates(self, pages: tuple[int, ...],
                           ) -> typing.Generator[Event, typing.Any, None]:
        """Ship committed updates to the replica sites (write all
        available).

        Runs post-commit, off the response path, like the deferred
        update writes themselves: one batched REPLICA_UPDATE message per
        remote replica site, applied there by a :class:`ReplicaApplier`.
        A replica that is down or across a severed link is dropped from
        the write set (the available-copies rule); it re-syncs through
        the WAL-replay path when it recovers.
        """
        system = self.system
        replicas = system.replicas
        assert replicas is not None
        bus = system.bus
        for site_id in replicas.replica_sites(self.access.site_id)[1:]:
            target = system.site_for(site_id)
            available = target.up and system.network.path_open(self.site,
                                                              target)
            if bus.has_subscribers(EventKind.REPLICA_PROPAGATE):
                bus.publish(ReplicaPropagate(
                    self.env.now, self.txn.txn_id, self.site.site_id,
                    site_id, len(pages), available))
            if not available:
                system.replica_writes_skipped += 1
                continue
            applier = ReplicaApplier(
                system, self.txn, target,
                CohortAccess(site_id=site_id, pages=pages,
                             updates=(True,) * len(pages)))
            applier.process = self.env.process(
                applier.run(), name=f"{self.txn.name}-replica@{site_id}")
            yield from self.send(MessageKind.REPLICA_UPDATE, applier,
                                 payload=pages)
            system.replica_updates_sent += 1

    # ------------------------------------------------------------------
    # Abort path
    # ------------------------------------------------------------------
    def _cleanup_after_interrupt(self, cause: object = None) -> None:
        """Undo local state when this incarnation is killed externally.

        A site crash that hits a prepared (or precommitted) cohort does
        *not* release its locks: the cohort becomes in-doubt -- that is
        2PC's blocking problem -- and is handed to the fault injector for
        resolution when the site recovers and replays its WAL.
        """
        if cause is AbortReason.SITE_CRASH and self.state in (
                CohortState.PREPARED, CohortState.PRECOMMITTED):
            faults = self.system.faults
            if faults is not None:
                faults.register_in_doubt(self)
                return
        self.state = CohortState.ABORTED
        self.site.lock_manager.finalize(self, committed=False)

    def __repr__(self) -> str:
        return f"<Cohort {self.txn.name}@{self.site.site_id}>"


class ReplicaApplier(CohortAgent):
    """Applies one committed cohort's updates at a replica site.

    Write-all-available: the committed primary cohort ships its updated
    pages in one REPLICA_UPDATE message; the applier takes an update
    lock per copy, writes a (non-forced) REPLICA_UPDATE WAL record, and
    pays the data-disk write, one page at a time.  Replica pages are
    disjoint from the hosting site's primary pages (the workload reads
    one local = primary copy), so applier locks only ever serialize
    appliers -- and because an applier releases each page before
    requesting the next, it never waits while holding a lock and can
    never close a deadlock cycle.
    """

    def run(self) -> typing.Generator[Event, typing.Any, None]:
        from repro.db.locks import LockMode  # local import: cycle guard
        ft = self.system.fault_timeouts
        if ft is None:
            message = yield self.recv()
        else:
            message = yield from self.recv_wait(ft.work_timeout_ms,
                                                wait="replica-update")
            if message is None:
                # The update died with the site or on a severed link;
                # this copy re-syncs at recovery (available copies).
                return
        assert message.kind is MessageKind.REPLICA_UPDATE, message
        self.state = CohortState.EXECUTING
        lock_manager = self.site.lock_manager
        for page in self.access.pages:
            if not self.site.up:
                # The replica crashed mid-apply: remaining copies
                # re-sync via WAL replay when the site recovers.
                break
            yield from lock_manager.acquire(self, page, LockMode.UPDATE)
            if not self.site.up:
                lock_manager.finalize(self, committed=False)
                break
            self.log(LogRecordKind.REPLICA_UPDATE)
            yield from self.site.write_page(page)
            lock_manager.finalize(self, committed=True)
        self.state = CohortState.COMMITTED

    def __repr__(self) -> str:
        return f"<ReplicaApplier {self.txn.name}@{self.site.site_id}>"


class _WorkTimeout(Exception):
    """Raised inside the master's work-await when a completion report
    never arrives (faults active only); handled in :meth:`MasterAgent.run`."""


class MasterAgent(Agent):
    """The master: starts cohorts, gathers WORKDONEs, runs the commit
    protocol's master side, and reports the outcome."""

    def __init__(self, system: "DistributedSystem",
                 txn: Transaction, site: "Site") -> None:
        super().__init__(system, txn, site)
        self.cohorts: list[CohortAgent] = []
        #: cohorts that voted YES (reset by protocols during voting).
        self.prepared_cohorts: list[CohortAgent] = []
        #: cohorts that voted READ_ONLY (reset by protocols during voting).
        self.read_only_cohorts: list[CohortAgent] = []
        #: votes piggybacked on work-completion reports (Unsolicited
        #: Vote style protocols); consumed by their master_commit.
        self.early_votes: list[Message] = []
        #: the decision this master logged (set the instant a COMMIT or
        #: ABORT record hits the WAL) -- what survives a master crash.
        self.decided: TransactionOutcome | None = None

    def force_log(self, kind: LogRecordKind,
                  ) -> typing.Generator[Event, typing.Any, None]:
        self._note_decision(kind)
        yield from super().force_log(kind)

    def log(self, kind: LogRecordKind) -> None:
        self._note_decision(kind)
        super().log(kind)

    def _note_decision(self, kind: LogRecordKind) -> None:
        # Record kinds append to the WAL synchronously, so ``decided``
        # always agrees with what recovery would read back.
        if kind is LogRecordKind.COMMIT:
            self.decided = TransactionOutcome.COMMITTED
        elif kind is LogRecordKind.ABORT:
            self.decided = TransactionOutcome.ABORTED

    def mark_phase(self, phase: CommitPhase) -> None:
        """Publish entry into a commit-processing phase (guarded)."""
        bus = self.system.bus
        if bus.has_subscribers(EventKind.PHASE):
            bus.publish(PhaseTransition(self.env.now, self.txn, phase,
                                        self.system.protocol.name))

    def run(self) -> typing.Generator[Event, typing.Any, TransactionOutcome]:
        """Full life of one incarnation; returns the outcome."""
        from repro.config import TransactionType
        try:
            self.mark_phase(CommitPhase.EXECUTE)
            yield from self.system.protocol.master_begin(self)
            if self.system.params.trans_type is TransactionType.PARALLEL:
                yield from self._start_and_await_parallel()
            else:
                yield from self._start_and_await_sequential()
            self.mark_phase(CommitPhase.VOTE)
            outcome = yield from self.system.protocol.master_commit(self)
            self.txn.outcome = outcome
            return outcome
        except _WorkTimeout:
            outcome = self._abort_after_work_timeout()
            self.txn.outcome = outcome
            return outcome
        except Interrupt as interrupt:
            if interrupt.cause is AbortReason.SITE_CRASH \
                    and self.decided is TransactionOutcome.COMMITTED:
                # The decision was already durable: the transaction *is*
                # committed, the crash only killed the coordinator's
                # process.  Cohorts resolve from the WAL.
                self.txn.outcome = TransactionOutcome.COMMITTED
                return TransactionOutcome.COMMITTED
            self.txn.outcome = TransactionOutcome.ABORTED
            return TransactionOutcome.ABORTED

    _WORK_REPORT_KINDS = (MessageKind.WORKDONE, MessageKind.VOTE_YES,
                          MessageKind.VOTE_NO)

    def _take_work_report(self, message: "Message") -> None:
        assert message.kind in self._WORK_REPORT_KINDS, message
        if message.kind is not MessageKind.WORKDONE:
            # An unsolicited vote piggybacked on the completion report.
            self.early_votes.append(message)

    def _recv_work_report(self, deadline: float,
                          ) -> typing.Generator[Event, typing.Any, "Message"]:
        """One work report, or ``_WorkTimeout`` once ``deadline`` passes.

        The deadline bounds the *total* wait for this report: stray
        (late/duplicate) traffic is skipped with the remaining budget,
        never a fresh ``work_timeout_ms`` window.  (Resetting the window
        per message let a trickle of strays -- e.g. duplicate ACKs from
        a recovering site -- postpone the timeout indefinitely.)
        """
        while True:
            remaining = deadline - self.env.now
            if remaining <= 0:
                raise _WorkTimeout
            message = yield from self.recv_wait(remaining, wait="work")
            if message is None:
                raise _WorkTimeout
            if message.kind in self._WORK_REPORT_KINDS:
                return message

    def _start_and_await_parallel(
            self) -> typing.Generator[Event, typing.Any, None]:
        """Start all cohorts together; wait for every completion report."""
        for cohort in self.cohorts:
            yield from self.send(MessageKind.STARTWORK, cohort)
        ft = self.system.fault_timeouts
        pending = len(self.cohorts)
        deadline = 0.0 if ft is None else self.env.now + ft.work_timeout_ms
        while pending:
            if ft is None:
                message = yield self.recv()
            else:
                message = yield from self._recv_work_report(deadline)
                # Each accepted report grants the remaining cohorts a
                # fresh window, so the phase waits at most
                # ``len(cohorts) * work_timeout_ms`` in total.
                deadline = self.env.now + ft.work_timeout_ms
            self._take_work_report(message)
            pending -= 1

    def _start_and_await_sequential(
            self) -> typing.Generator[Event, typing.Any, None]:
        """Start cohorts one after another (paper Section 4.1)."""
        ft = self.system.fault_timeouts
        for cohort in self.cohorts:
            yield from self.send(MessageKind.STARTWORK, cohort)
            if ft is None:
                message = yield self.recv()
            else:
                # A fresh deadline per cohort: total wait is bounded by
                # ``len(cohorts) * work_timeout_ms`` even under stray
                # traffic.
                message = yield from self._recv_work_report(
                    self.env.now + ft.work_timeout_ms)
            self._take_work_report(message)

    def _abort_after_work_timeout(self) -> TransactionOutcome:
        """A cohort never reported (lost STARTWORK/WORKDONE or a crashed
        site): abort the incarnation and reap its surviving cohorts."""
        txn = self.txn
        txn.aborting = True
        if txn.abort_reason is None:
            txn.abort_reason = AbortReason.TIMEOUT
        for cohort in self.cohorts:
            if cohort.process is not None and cohort.process.is_alive:
                cohort.process.interrupt(AbortReason.TIMEOUT)
        return TransactionOutcome.ABORTED

    def __repr__(self) -> str:
        return f"<Master {self.txn.name}@{self.site.site_id}>"
