"""Page locking: distributed strict 2PL with optional OPT lending.

Standard behaviour (paper Section 4.2): cohorts take read locks on pages
they read and update locks on pages they will update; all locks are held
until the PREPARE message arrives, at which point read locks are released
and update locks are retained until the global decision.

OPT behaviour (paper Section 3): when a cohort enters the *prepared*
state, its update locks become *lendable*.  A request that conflicts
only with lendable locks is granted immediately as a *borrow*; the lock
manager records borrower->lender edges so that

- a lender's commit releases its borrowers ("taken off the shelf"), and
- a lender's abort aborts its borrowers (abort chain of length one).

Waiters are strictly FCFS per page: a request is granted only when it is
at the head of the queue and compatible with all active holders (lendable
holders are bypassed when lending is enabled).
"""

from __future__ import annotations

import collections
import dataclasses
import enum
import typing

from repro.obs.bus import EventBus
from repro.obs.events import (
    Borrow,
    EventKind,
    LockBlock,
    LockGrant,
    LockRelease,
    LockRequest as LockRequestEvent,
    TxnBlock,
    TxnUnblock,
)
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.deadlock import WaitForGraph
    from repro.db.transaction import CohortAgent
    from repro.sim.engine import Environment


class LockMode(enum.Enum):
    """Page lock modes.  READ is shared, UPDATE is exclusive."""

    READ = "read"
    UPDATE = "update"

    def compatible_with(self, other: "LockMode") -> bool:
        return self is LockMode.READ and other is LockMode.READ

    def covers(self, other: "LockMode") -> bool:
        """True if holding ``self`` satisfies a request for ``other``."""
        return self is LockMode.UPDATE or other is LockMode.READ


@dataclasses.dataclass(eq=False)
class LockRequest:
    """A pending lock request parked in a page's FCFS queue.

    Identity-hashed (``eq=False``): the wait-for graph keys edges by the
    request object itself.
    """

    cohort: "CohortAgent"
    page: int
    mode: LockMode
    #: Grant event, created lazily: an uncontested request is granted
    #: synchronously inside ``acquire`` and never needs (or schedules)
    #: one -- that dead event used to cost an alloc + heap cycle on the
    #: lock fast path.
    event: Event | None = None

    def __repr__(self) -> str:
        return (f"<LockRequest {self.cohort.txn.name} page={self.page} "
                f"{self.mode.value}>")


class _LockEntry:
    """Lock state of one page."""

    __slots__ = ("holders", "lenders", "waiters")

    def __init__(self) -> None:
        #: active holders (including borrowers): cohort -> mode.
        self.holders: dict["CohortAgent", LockMode] = {}
        #: prepared lenders (OPT only): cohort -> mode (always UPDATE).
        self.lenders: dict["CohortAgent", LockMode] = {}
        self.waiters: collections.deque[LockRequest] = collections.deque()

    def is_free(self) -> bool:
        return not self.holders and not self.lenders and not self.waiters


class LockManager:
    """The lock manager of one site."""

    def __init__(self, env: "Environment", site_id: int,
                 wait_for_graph: "WaitForGraph",
                 lending_enabled: bool = False,
                 on_lender_abort: typing.Callable[["CohortAgent"], None]
                 | None = None,
                 bus: EventBus | None = None) -> None:
        self.env = env
        self.site_id = site_id
        self.wfg = wait_for_graph
        self.lending_enabled = lending_enabled
        #: behavioural callback -- the system must *abort* each borrower
        #: when its lender aborts; observation goes through the bus.
        self._on_lender_abort = on_lender_abort or (lambda cohort: None)
        #: instrumentation plane; a standalone manager gets a private bus.
        self.bus = bus if bus is not None else EventBus()
        self._entries: dict[int, _LockEntry] = {}
        #: lender cohort -> set of borrower cohorts.
        self._borrows: dict["CohortAgent", set["CohortAgent"]] = {}
        self._waiting_requests: dict["CohortAgent", LockRequest] = {}
        # Counters.
        self.grants = 0
        self.borrow_grants = 0
        self.waits = 0

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------
    def acquire(self, cohort: "CohortAgent", page: int, mode: LockMode,
                ) -> typing.Generator[Event, typing.Any, None]:
        """Coroutine: obtain ``mode`` on ``page`` for ``cohort``.

        Returns when the lock is granted.  If the requesting transaction
        is chosen as a deadlock victim while waiting, the cohort process
        is interrupted by the system; the pending request is withdrawn by
        the cohort's cleanup via :meth:`finalize`.
        """
        entry = self._entry(page)
        held = cohort.held_locks.get(page)
        if held is not None and held.covers(mode):
            return  # already held in a sufficient mode
        bus = self.bus
        if bus.has_subscribers(EventKind.LOCK_REQUEST):
            bus.publish(LockRequestEvent(self.env.now, self.site_id,
                                         cohort, page, mode))
        request = LockRequest(cohort, page, mode)
        if not entry.waiters and self._grantable(entry, request):
            self._grant(entry, request)
            return
        request.event = Event(self.env)
        # Must wait: strict FCFS.
        entry.waiters.append(request)
        self._waiting_requests[cohort] = request
        self.waits += 1
        if bus.has_subscribers(EventKind.LOCK_BLOCK):
            bus.publish(LockBlock(self.env.now, self.site_id,
                                  cohort, page, mode))
        txn = cohort.txn
        txn.blocked_cohorts += 1
        if txn.blocked_cohorts == 1:
            bus.publish(TxnBlock(self.env.now, txn))
        self._refresh_wait_edges(entry)
        self.wfg.check_for_deadlock(cohort.txn)
        try:
            yield request.event
        finally:
            txn.blocked_cohorts -= 1
            if txn.blocked_cohorts == 0:
                bus.publish(TxnUnblock(self.env.now, txn))

    def _grantable(self, entry: _LockEntry, request: LockRequest,
                   ) -> bool:
        """Can the request be satisfied right now (ignoring the queue)?"""
        for holder, mode in entry.holders.items():
            if holder is request.cohort:
                continue
            if not mode.compatible_with(request.mode):
                return False
        if entry.lenders and not self.lending_enabled:
            return False
        # Lenders hold UPDATE locks, which conflict with everything; with
        # lending enabled they do not block the request (it borrows).
        return True

    def _grant(self, entry: _LockEntry, request: LockRequest) -> None:
        cohort = request.cohort
        held = cohort.held_locks.get(request.page)
        if held is None or request.mode is LockMode.UPDATE:
            cohort.held_locks[request.page] = request.mode
        entry.holders[cohort] = cohort.held_locks[request.page]
        self.grants += 1
        lenders = [lender for lender in entry.lenders if lender is not cohort]
        if lenders:
            self.borrow_grants += 1
            cohort.txn.pages_borrowed += 1
            self.bus.publish(Borrow(self.env.now, self.site_id, cohort,
                                    request.page))
            for lender in lenders:
                self._borrows.setdefault(lender, set()).add(cohort)
                cohort.add_lender(lender)
        if self.bus.has_subscribers(EventKind.LOCK_GRANT):
            self.bus.publish(LockGrant(self.env.now, self.site_id, cohort,
                                       request.page, request.mode,
                                       bool(lenders)))
        if request.event is not None and not request.event.triggered:
            request.event.succeed()

    # ------------------------------------------------------------------
    # State transitions driven by the commit protocols
    # ------------------------------------------------------------------
    def prepare(self, cohort: "CohortAgent") -> None:
        """The cohort entered the prepared state.

        Read locks are released; with lending enabled, its update locks
        become lendable (moved from *holders* to *lenders*).
        """
        touched: list[int] = []
        for page, mode in list(cohort.held_locks.items()):
            entry = self._entry(page)
            if mode is LockMode.READ:
                del cohort.held_locks[page]
                entry.holders.pop(cohort, None)
                touched.append(page)
            elif self.lending_enabled:
                entry.holders.pop(cohort, None)
                entry.lenders[cohort] = mode
                cohort.lending_pages.add(page)
                touched.append(page)
        for page in touched:
            self._scan(self._entry(page))
        self._gc(touched)

    def finalize(self, cohort: "CohortAgent", committed: bool) -> None:
        """Release everything the cohort holds (commit or abort).

        On commit, the cohort's borrowers lose a lender (possibly coming
        off the shelf).  On abort, each borrower is reported through the
        ``on_lender_abort`` callback so the system can abort it.
        """
        if self.bus.has_subscribers(EventKind.LOCK_RELEASE):
            self.bus.publish(LockRelease(self.env.now, self.site_id, cohort,
                                         committed))
        touched: list[int] = []
        # Withdraw a pending request, if any.
        request = self._waiting_requests.pop(cohort, None)
        if request is not None:
            entry = self._entries.get(request.page)
            if entry is not None:
                try:
                    entry.waiters.remove(request)
                except ValueError:
                    pass
                touched.append(request.page)
        # Drop all holdings and lendings.
        for page in list(cohort.held_locks):
            entry = self._entries.get(page)
            if entry is not None:
                entry.holders.pop(cohort, None)
                entry.lenders.pop(cohort, None)
                touched.append(page)
        for page in list(cohort.lending_pages):
            entry = self._entries.get(page)
            if entry is not None:
                entry.lenders.pop(cohort, None)
                touched.append(page)
        cohort.held_locks.clear()
        cohort.lending_pages.clear()
        self.wfg.remove_transaction_waits(cohort.txn)
        # Resolve borrowers (in deterministic order: set iteration order
        # would vary run to run).
        borrowers = sorted(self._borrows.pop(cohort, set()),
                           key=lambda c: (c.txn.txn_id, c.txn.incarnation))
        for borrower in borrowers:
            if committed:
                borrower.remove_lender(cohort)
            else:
                self._on_lender_abort(borrower)
        # Re-scan affected pages.
        for page in touched:
            entry = self._entries.get(page)
            if entry is not None:
                self._scan(entry)
        self._gc(touched)

    # ------------------------------------------------------------------
    # Queue scanning
    # ------------------------------------------------------------------
    def _scan(self, entry: _LockEntry) -> None:
        """Grant waiters from the head of the queue while possible.

        Granting re-points the remaining waiters' wait-for edges at the
        new holder, which can *form* a cycle (the new holder may itself
        be waiting elsewhere), so detection must re-run for every waiter
        still blocked -- immediate detection, per the paper.
        """
        while entry.waiters:
            request = entry.waiters[0]
            if not self._grantable(entry, request):
                break
            entry.waiters.popleft()
            self._waiting_requests.pop(request.cohort, None)
            self.wfg.clear_edges(request)
            self._grant(entry, request)
        self._refresh_wait_edges(entry)
        for request in list(entry.waiters):
            self.wfg.check_for_deadlock(request.cohort.txn)

    def _refresh_wait_edges(self, entry: _LockEntry) -> None:
        """Recompute wait-for edges for the remaining waiters of a page.

        A waiter waits for (a) every *active* holder it conflicts with,
        (b) every earlier waiter (strict FCFS), and (c) lenders only when
        lending is disabled (with lending they will be borrowed from).
        """
        earlier: list["CohortAgent"] = []
        for request in entry.waiters:
            blockers: set["CohortAgent"] = set()
            for holder, mode in entry.holders.items():
                if holder is request.cohort:
                    continue
                if not mode.compatible_with(request.mode):
                    blockers.add(holder)
            if not self.lending_enabled:
                blockers.update(entry.lenders)
            blockers.update(c for c in earlier if c is not request.cohort)
            self.wfg.set_edges(request, request.cohort.txn,
                               {b.txn for b in blockers})
            earlier.append(request.cohort)

    # ------------------------------------------------------------------
    # Helpers and introspection
    # ------------------------------------------------------------------
    def _entry(self, page: int) -> _LockEntry:
        entry = self._entries.get(page)
        if entry is None:
            entry = _LockEntry()
            self._entries[page] = entry
        return entry

    def _gc(self, pages: typing.Iterable[int]) -> None:
        for page in pages:
            entry = self._entries.get(page)
            if entry is not None and entry.is_free():
                del self._entries[page]

    def holders_of(self, page: int) -> dict["CohortAgent", LockMode]:
        entry = self._entries.get(page)
        return dict(entry.holders) if entry else {}

    def lenders_of(self, page: int) -> dict["CohortAgent", LockMode]:
        entry = self._entries.get(page)
        return dict(entry.lenders) if entry else {}

    def waiters_of(self, page: int) -> list[LockRequest]:
        entry = self._entries.get(page)
        return list(entry.waiters) if entry else []

    def borrowers_of(self, lender: "CohortAgent") -> set["CohortAgent"]:
        return set(self._borrows.get(lender, set()))

    def assert_consistent(self) -> None:
        """Internal invariant checks (used by tests).

        - no cohort both holds and lends the same page,
        - every lender is in the prepared (or later) state,
        - no waiter is also an active holder of a conflicting mode.
        """
        from repro.db.transaction import CohortState
        for page, entry in self._entries.items():
            overlap = set(entry.holders) & set(entry.lenders)
            if overlap:
                raise AssertionError(
                    f"page {page}: cohorts both hold and lend: {overlap}")
            for lender in entry.lenders:
                if lender.state not in (CohortState.PREPARED,
                                        CohortState.PRECOMMITTED):
                    raise AssertionError(
                        f"page {page}: non-prepared lender {lender}")

    def __repr__(self) -> str:
        return (f"<LockManager site={self.site_id} "
                f"entries={len(self._entries)} lending={self.lending_enabled}>")
