"""Admission control: the Half-and-Half load controller and the
open-system bounded admission queue.

The paper reports *peak* throughput because "by using a suitable
admission control policy (for example, Half-and-Half [7]), the
throughput can be maintained at this level in high-performance systems"
(Section 5).  This module implements that policy (Carey, Krishnamurthi,
Livny, PODS 1990) so the claim can be demonstrated rather than assumed:

- transactions must be *admitted* before they run;
- admission is gated on the fraction of running transactions that are
  blocked on locks: while at least half are blocked, no new transaction
  is admitted (the other "half" keeps the resources busy);
- the *cancellation* half: when a new block would push the blocked
  fraction past the limit anyway (admitted transactions keep hitting
  locks after admission), the newly blocked transaction is cancelled --
  aborted and sent back through the restart path -- so the running mix
  never degenerates into a pile of waiters;
- an aborted or cancelled transaction's restart re-enters through the
  gate too.

With the controller enabled, raising the MPL beyond the thrashing point
no longer collapses throughput: excess slots simply wait at the gate.
"""

from __future__ import annotations

import collections
import typing

from repro.obs.events import EventKind
from repro.sim.events import Event
from repro.sim.stats import TimeWeightedAverage

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.transaction import CohortAgent, Transaction
    from repro.obs.bus import EventBus, Subscription
    from repro.sim.engine import Environment


class BoundedAdmissionQueue:
    """A bounded FIFO admission queue for the open-system workload.

    The gate counterpart of :class:`HalfAndHalfController` for open
    arrivals: arrivals :meth:`offer` themselves; a full queue rejects the
    arrival (the caller counts it as shed load); per-site server slots
    :meth:`get` the oldest waiting arrival.  The queue tracks its
    time-weighted length so mean backlog can be reported per run.

    Unlike :class:`repro.sim.resources.Store`, ``put`` can fail -- that
    is the point: in an open system the queue bound is the knob that
    turns overload into shed load instead of unbounded latency.
    """

    def __init__(self, env: "Environment", limit: int) -> None:
        if limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {limit}")
        self.env = env
        self.limit = limit
        self._items: collections.deque[typing.Any] = collections.deque()
        self._getters: collections.deque[Event] = collections.deque()
        # Lifetime counters (diagnostics; measured-period accounting
        # lives in the metrics collector, fed by bus events).
        self.offered = 0
        self.shed = 0
        self.admitted = 0
        self.length = TimeWeightedAverage(initial_time=env.now)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.limit

    def offer(self, item: typing.Any) -> bool:
        """Admit ``item`` if there is room; False means it was shed."""
        self.offered += 1
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                # An idle server is waiting: hand over directly, the
                # item never occupies a queue slot.
                self.admitted += 1
                getter.succeed(item)
                return True
        if len(self._items) >= self.limit:
            self.shed += 1
            return False
        self.admitted += 1
        self._items.append(item)
        self.length.update(len(self._items), self.env.now)
        return True

    def get(self) -> Event:
        """Event yielding the oldest queued arrival."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
            self.length.update(len(self._items), self.env.now)
        else:
            self._getters.append(event)
        return event

    def reset_stats(self, now: float) -> None:
        """End of warmup: discard the time-weighted length history."""
        self.length.reset(now)

    def capture_state(self) -> dict:
        """Picklable snapshot (soak checkpoint; queue must be drained)."""
        if self._items:
            raise RuntimeError(
                f"cannot checkpoint a non-empty admission queue "
                f"({len(self._items)} items)")
        return {"offered": self.offered, "shed": self.shed,
                "admitted": self.admitted, "length": self.length}

    def restore_state(self, state: dict) -> None:
        self.offered = state["offered"]
        self.shed = state["shed"]
        self.admitted = state["admitted"]
        self.length = state["length"]

    def __repr__(self) -> str:
        return (f"<BoundedAdmissionQueue {len(self._items)}/{self.limit} "
                f"shed={self.shed}>")


class HalfAndHalfController:
    """Gate admissions on the blocked fraction of running transactions."""

    def __init__(self, env: "Environment",
                 blocked_fraction_limit: float = 0.5,
                 cancel: typing.Callable[["Transaction"], None]
                 | None = None) -> None:
        if not 0.0 < blocked_fraction_limit <= 1.0:
            raise ValueError("blocked_fraction_limit must be in (0, 1]")
        self.env = env
        self.blocked_fraction_limit = blocked_fraction_limit
        #: called with a transaction to cancel (None disables the
        #: cancellation half of the policy).
        self._cancel = cancel
        self.running = 0
        self.blocked = 0
        self._gate: collections.deque[Event] = collections.deque()
        # Counters for diagnostics.
        self.admitted = 0
        self.gated = 0
        self.cancelled = 0

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def blocked_fraction(self) -> float:
        if self.running == 0:
            return 0.0
        return self.blocked / self.running

    def gate_open(self) -> bool:
        """May a new transaction be admitted right now?"""
        if self.running == 0:
            return True
        return self.blocked_fraction < self.blocked_fraction_limit

    @property
    def waiting_at_gate(self) -> int:
        return len(self._gate)

    # ------------------------------------------------------------------
    # Slot interface
    # ------------------------------------------------------------------
    def admit(self) -> typing.Generator[Event, typing.Any, None]:
        """Coroutine: wait until the controller admits a transaction."""
        if self.gate_open() and not self._gate:
            self.running += 1
            self.admitted += 1
            return
        ticket = Event(self.env)
        self._gate.append(ticket)
        self.gated += 1
        yield ticket

    def release(self) -> None:
        """A previously admitted transaction finished (commit or abort)."""
        if self.running <= 0:
            raise RuntimeError("release without a matching admit")
        self.running -= 1
        self._drain_gate()

    # ------------------------------------------------------------------
    # Lock-wait feed (TXN_BLOCK/TXN_UNBLOCK events from the bus)
    # ------------------------------------------------------------------
    def subscribe(self, bus: "EventBus") -> "Subscription":
        """Attach the controller to the system's instrumentation bus.

        Must be subscribed *after* the metrics collector: cancellation
        decisions are taken against an up-to-date blocked count.
        """
        return bus.subscribe_map({
            EventKind.TXN_BLOCK: lambda e: self._txn_blocked(e.txn),
            EventKind.TXN_UNBLOCK: lambda e: self._txn_unblocked(e.txn),
        })

    def _txn_blocked(self, txn: "Transaction") -> None:
        self.blocked += 1
        if (self._cancel is not None and not txn.aborting
                and self.blocked_fraction > self.blocked_fraction_limit):
            # Cancellation half: the newly blocked transaction is
            # restarted rather than allowed to deepen the wait queues.
            # (The abort is delivered asynchronously; the blocked
            # counter corrects itself when the cohort's wait is torn
            # down.)
            self.cancelled += 1
            self._cancel(txn)

    def _txn_unblocked(self, txn: "Transaction") -> None:
        self.blocked -= 1
        self._drain_gate()

    def wait_change(self, cohort: "CohortAgent", waiting: bool) -> None:
        """Direct-drive compat for callers without a bus (unit tests).

        Expects ``txn.blocked_cohorts`` to be updated first, mirroring
        the lock managers' transition points.
        """
        txn = cohort.txn
        if waiting and txn.blocked_cohorts == 1:
            self._txn_blocked(txn)
        elif not waiting and txn.blocked_cohorts == 0:
            self._txn_unblocked(txn)

    # ------------------------------------------------------------------
    def _drain_gate(self) -> None:
        while self._gate and self.gate_open():
            ticket = self._gate.popleft()
            self.running += 1
            self.admitted += 1
            ticket.succeed()

    def __repr__(self) -> str:
        return (f"<HalfAndHalf running={self.running} "
                f"blocked={self.blocked} gate={len(self._gate)}>")
