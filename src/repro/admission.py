"""Admission control: the Half-and-Half load controller.

The paper reports *peak* throughput because "by using a suitable
admission control policy (for example, Half-and-Half [7]), the
throughput can be maintained at this level in high-performance systems"
(Section 5).  This module implements that policy (Carey, Krishnamurthi,
Livny, PODS 1990) so the claim can be demonstrated rather than assumed:

- transactions must be *admitted* before they run;
- admission is gated on the fraction of running transactions that are
  blocked on locks: while at least half are blocked, no new transaction
  is admitted (the other "half" keeps the resources busy);
- the *cancellation* half: when a new block would push the blocked
  fraction past the limit anyway (admitted transactions keep hitting
  locks after admission), the newly blocked transaction is cancelled --
  aborted and sent back through the restart path -- so the running mix
  never degenerates into a pile of waiters;
- an aborted or cancelled transaction's restart re-enters through the
  gate too.

With the controller enabled, raising the MPL beyond the thrashing point
no longer collapses throughput: excess slots simply wait at the gate.
"""

from __future__ import annotations

import collections
import typing

from repro.obs.events import EventKind
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.transaction import CohortAgent, Transaction
    from repro.obs.bus import EventBus, Subscription
    from repro.sim.engine import Environment


class HalfAndHalfController:
    """Gate admissions on the blocked fraction of running transactions."""

    def __init__(self, env: "Environment",
                 blocked_fraction_limit: float = 0.5,
                 cancel: typing.Callable[["Transaction"], None]
                 | None = None) -> None:
        if not 0.0 < blocked_fraction_limit <= 1.0:
            raise ValueError("blocked_fraction_limit must be in (0, 1]")
        self.env = env
        self.blocked_fraction_limit = blocked_fraction_limit
        #: called with a transaction to cancel (None disables the
        #: cancellation half of the policy).
        self._cancel = cancel
        self.running = 0
        self.blocked = 0
        self._gate: collections.deque[Event] = collections.deque()
        # Counters for diagnostics.
        self.admitted = 0
        self.gated = 0
        self.cancelled = 0

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def blocked_fraction(self) -> float:
        if self.running == 0:
            return 0.0
        return self.blocked / self.running

    def gate_open(self) -> bool:
        """May a new transaction be admitted right now?"""
        if self.running == 0:
            return True
        return self.blocked_fraction < self.blocked_fraction_limit

    @property
    def waiting_at_gate(self) -> int:
        return len(self._gate)

    # ------------------------------------------------------------------
    # Slot interface
    # ------------------------------------------------------------------
    def admit(self) -> typing.Generator[Event, typing.Any, None]:
        """Coroutine: wait until the controller admits a transaction."""
        if self.gate_open() and not self._gate:
            self.running += 1
            self.admitted += 1
            return
        ticket = Event(self.env)
        self._gate.append(ticket)
        self.gated += 1
        yield ticket

    def release(self) -> None:
        """A previously admitted transaction finished (commit or abort)."""
        if self.running <= 0:
            raise RuntimeError("release without a matching admit")
        self.running -= 1
        self._drain_gate()

    # ------------------------------------------------------------------
    # Lock-wait feed (TXN_BLOCK/TXN_UNBLOCK events from the bus)
    # ------------------------------------------------------------------
    def subscribe(self, bus: "EventBus") -> "Subscription":
        """Attach the controller to the system's instrumentation bus.

        Must be subscribed *after* the metrics collector: cancellation
        decisions are taken against an up-to-date blocked count.
        """
        return bus.subscribe_map({
            EventKind.TXN_BLOCK: lambda e: self._txn_blocked(e.txn),
            EventKind.TXN_UNBLOCK: lambda e: self._txn_unblocked(e.txn),
        })

    def _txn_blocked(self, txn: "Transaction") -> None:
        self.blocked += 1
        if (self._cancel is not None and not txn.aborting
                and self.blocked_fraction > self.blocked_fraction_limit):
            # Cancellation half: the newly blocked transaction is
            # restarted rather than allowed to deepen the wait queues.
            # (The abort is delivered asynchronously; the blocked
            # counter corrects itself when the cohort's wait is torn
            # down.)
            self.cancelled += 1
            self._cancel(txn)

    def _txn_unblocked(self, txn: "Transaction") -> None:
        self.blocked -= 1
        self._drain_gate()

    def wait_change(self, cohort: "CohortAgent", waiting: bool) -> None:
        """Direct-drive compat for callers without a bus (unit tests).

        Expects ``txn.blocked_cohorts`` to be updated first, mirroring
        the lock managers' transition points.
        """
        txn = cohort.txn
        if waiting and txn.blocked_cohorts == 1:
            self._txn_blocked(txn)
        elif not waiting and txn.blocked_cohorts == 0:
            self._txn_unblocked(txn)

    # ------------------------------------------------------------------
    def _drain_gate(self) -> None:
        while self._gate and self.gate_open():
            ticket = self._gate.popleft()
            self.running += 1
            self.admitted += 1
            ticket.succeed()

    def __repr__(self) -> str:
        return (f"<HalfAndHalf running={self.running} "
                f"blocked={self.blocked} gate={len(self._gate)}>")
