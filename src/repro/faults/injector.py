"""The fault injector: executes a :class:`FaultPlan` against a system.

Crash semantics (docs/MODEL.md, "Failure model & recovery"):

- A crashing site loses its volatile state: every agent process hosted
  there is killed and its inbox flushed; in-flight deliveries addressed
  to it are dropped by the network.  The WAL (``LogManager.records``)
  is stable storage and survives.
- Cohorts killed in the PREPARED/PRECOMMITTED state become *in-doubt*:
  they keep their update locks (that is the blocking phenomenon the
  paper argues about) and are recorded for resolution at recovery.
- On recovery the site replays its WAL: each in-doubt cohort runs the
  protocol's status-inquiry / presumption / termination logic
  (:meth:`repro.core.base.CommitProtocol.resolve_in_doubt`) until it
  commits or aborts, releasing its locks.

Everything here is driven by ordinary simulation processes and named
RNG streams, so runs are deterministic and reproducible.
"""

from __future__ import annotations

import typing

from repro.db.transaction import AbortReason, CohortState
from repro.faults.plan import FaultConfig, FaultPlan
from repro.obs.events import (
    DcCrash,
    EventKind,
    LinkHeal,
    LinkPartition,
    SiteCrash,
    SiteRecover,
    SiteRecoveryReplay,
)
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.messages import Message
    from repro.db.site import Site
    from repro.db.system import DistributedSystem
    from repro.db.transaction import CohortAgent, Transaction
    from repro.faults.region import RegionDirective

#: cohort states whose volatile context is lost without consequence --
#: a crash simply aborts them (locks released, work redone on restart).
_VOLATILE_STATES = (CohortState.IDLE, CohortState.EXECUTING,
                    CohortState.ON_SHELF, CohortState.EXECUTED)


class FaultInjector:
    """Schedules crashes/recoveries and tracks in-doubt cohorts."""

    def __init__(self, system: "DistributedSystem",
                 config: FaultConfig) -> None:
        self.system = system
        self.config = config
        self.plan = FaultPlan(config, system.streams, len(system.sites))
        # Counters (reported by the availability experiment).
        self.crashes = 0
        self.recoveries = 0
        self.messages_dropped = 0
        self.in_doubt_resolved = 0
        self.replays = 0
        # Correlated-failure counters (region-outage experiment).
        self.dc_crashes = 0
        self.link_partitions = 0
        #: total ms in-doubt cohorts spent holding their update locks
        #: before resolution (the paper's blocking cost, made a number).
        self.blocked_lock_ms = 0.0
        #: in-doubt cohorts per crashed site, in registration order.
        self._in_doubt: dict[int, list["CohortAgent"]] = {}
        #: live incarnations, insertion-ordered (determinism: iteration
        #: order at crash time must not depend on object hashes).
        self._live: dict["Transaction", None] = {}
        self._started = False
        # Region plans resolve against the topology's site -> DC
        # placement; running one without a multi-DC topology is a
        # configuration error, caught here (surfaces as a CLI error).
        cost = system.cost_model
        self._placement = None if cost is None else cost.placement
        region = config.region
        if region is not None and region.directives:
            if self._placement is None:
                raise ValueError(
                    "a region fault plan needs a multi-datacenter "
                    "topology (run with --topology "
                    "dcs:<D>x<S>:rtt_ms=<ms> or matrix:...)")
            region.check_dcs(max(self._placement) + 1)
        #: sever depth per normalized DC pair; overlapping directives
        #: severing the same link group nest instead of double-healing.
        self._partition_depth: dict[tuple[int, int], int] = {}
        #: currently severed DC pairs (the hot-path membership set).
        self._partitioned: set[tuple[int, int]] = set()
        #: shared one-shot event triggered at the next partition heal;
        #: lazily (re)created by :meth:`heal_event`.
        self._heal_event: Event | None = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the per-site crash drivers (idempotent)."""
        if self._started:
            return
        self._started = True
        env = self.system.env
        for site in self.system.sites:
            schedule = self.plan.scheduled_crashes(site.site_id)
            if schedule:
                env.process(self._scheduled_driver(site, schedule),
                            name=f"faults-sched@{site.site_id}")
        for site_id in self.plan.stochastic_sites():
            site = self.system.sites[site_id]
            env.process(self._stochastic_driver(site),
                        name=f"faults-mttf@{site_id}")
        for index, directive in enumerate(self.plan.region_directives()):
            driver = (self._region_scheduled_driver
                      if directive.is_scheduled
                      else self._region_stochastic_driver)
            env.process(driver(directive),
                        name=f"faults-region-{index}")

    def track(self, txn: "Transaction") -> None:
        self._live[txn] = None

    def untrack(self, txn: "Transaction") -> None:
        self._live.pop(txn, None)

    # ------------------------------------------------------------------
    # Queries (used by the network and the protocol layer)
    # ------------------------------------------------------------------
    def site_is_up(self, site: "Site") -> bool:
        return site.up

    @property
    def partitions_active(self) -> bool:
        """True while any inter-DC link group is severed."""
        return bool(self._partitioned)

    def link_severed(self, src_site: int, dst_site: int) -> bool:
        """Whether a live partition cuts the link between two sites.

        Hot path: with no active partition this is one truthiness test,
        so runs without a region plan pay (almost) nothing.
        """
        if not self._partitioned:
            return False
        placement = self._placement
        if placement is None:
            return False
        dc_a = placement[src_site]
        dc_b = placement[dst_site]
        if dc_a == dc_b:
            return False
        key = (dc_a, dc_b) if dc_a < dc_b else (dc_b, dc_a)
        return key in self._partitioned

    def lose_message(self, message: "Message") -> bool:
        """Injected loss; drawn *after* the topology's own wire loss, so
        the two stack (either drops the message)."""
        return self.plan.lose_message(message.kind.value)

    def delay_message(self, message: "Message") -> float:
        """Extra wire delay (ms) for one remote message; 0 = none.

        Added on top of whatever the active network topology already
        charged for the link (the cost model prices the healthy wire,
        the injector the unhealthy one)."""
        return self.plan.message_delay(message.kind.value)

    def heal_event(self) -> Event:
        """A one-shot event triggered at the next partition heal.

        Resolvers blocked across a severed link wait on this alongside
        their capped-backoff timer: without the wake-up the first
        post-heal inquiry could sleep out a full 8x-capped interval,
        inflating ``blocked_lock_ms`` long after the link is back.
        The event is shared between waiters and lazily re-armed after
        each heal.
        """
        event = self._heal_event
        if event is None or event.triggered:
            event = Event(self.system.env)
            self._heal_event = event
        return event

    def wait_until_up(self, site: "Site"):
        """Coroutine: poll until ``site`` is operational again."""
        retry = self.config.timeouts.resolve_retry_ms
        while not site.up:
            yield self.system.env.timeout(retry)

    # ------------------------------------------------------------------
    # Crash / recover drivers
    # ------------------------------------------------------------------
    def _scheduled_driver(self, site: "Site", schedule):
        env = self.system.env
        for event in schedule:
            if event.at_ms > env.now:
                yield env.timeout(event.at_ms - env.now)
            if not site.up:
                continue  # overlaps a stochastic outage; skip
            self._crash(site)
            yield env.timeout(event.duration_ms)
            self._recover(site)

    def _stochastic_driver(self, site: "Site"):
        env = self.system.env
        for uptime, downtime in self.plan.crash_cycle(site.site_id):
            yield env.timeout(uptime)
            if not site.up:
                continue  # already down via the explicit schedule
            self._crash(site)
            yield env.timeout(downtime)
            self._recover(site)

    # ------------------------------------------------------------------
    # Correlated-failure drivers (region fault plans)
    # ------------------------------------------------------------------
    def _region_scheduled_driver(self, directive: "RegionDirective"):
        env = self.system.env
        if directive.at_ms > env.now:
            yield env.timeout(directive.at_ms - env.now)
        yield from self._one_outage(directive, directive.for_ms)

    def _region_stochastic_driver(self, directive: "RegionDirective"):
        env = self.system.env
        for healthy_ms, outage_ms in self.plan.region_cycle(directive):
            yield env.timeout(healthy_ms)
            yield from self._one_outage(directive, outage_ms)

    def _one_outage(self, directive: "RegionDirective",
                    duration_ms: float):
        env = self.system.env
        if directive.kind == "dc_crash":
            taken = self._crash_dc(directive.dc)
            yield env.timeout(duration_ms)
            self._recover_dc(taken)
        else:
            self._sever(directive.dc_a, directive.dc_b)
            yield env.timeout(duration_ms)
            self._heal(directive.dc_a, directive.dc_b)

    def _crash_dc(self, dc: int) -> list["Site"]:
        """Crash every operational site of one datacenter atomically.

        Returns the sites this outage took down; the matching recovery
        brings back exactly those, so an overlapping per-site fault
        keeps ownership of the sites it crashed first.
        """
        placement = self._placement
        assert placement is not None
        taken = [site for site in self.system.sites
                 if placement[site.site_id] == dc and site.up]
        self.dc_crashes += 1
        for site in taken:
            self._crash(site)
        bus = self.system.bus
        if bus.has_subscribers(EventKind.DC_CRASH):
            bus.publish(DcCrash(self.system.env.now, dc,
                                tuple(site.site_id for site in taken)))
        return taken

    def _recover_dc(self, taken: list["Site"]) -> None:
        for site in taken:
            if not site.up:
                self._recover(site)

    def _sever(self, dc_a: int, dc_b: int) -> None:
        key = (dc_a, dc_b) if dc_a < dc_b else (dc_b, dc_a)
        depth = self._partition_depth.get(key, 0) + 1
        self._partition_depth[key] = depth
        if depth > 1:
            return  # nested sever of an already-cut link group
        self._partitioned.add(key)
        self.link_partitions += 1
        bus = self.system.bus
        if bus.has_subscribers(EventKind.LINK_PARTITION):
            bus.publish(LinkPartition(self.system.env.now, key[0],
                                      key[1]))

    def _heal(self, dc_a: int, dc_b: int) -> None:
        key = (dc_a, dc_b) if dc_a < dc_b else (dc_b, dc_a)
        depth = self._partition_depth[key] - 1
        self._partition_depth[key] = depth
        if depth:
            return  # an overlapping directive still holds the cut
        self._partitioned.discard(key)
        if self._heal_event is not None and not self._heal_event.triggered:
            self._heal_event.succeed()
        bus = self.system.bus
        if bus.has_subscribers(EventKind.LINK_HEAL):
            bus.publish(LinkHeal(self.system.env.now, key[0], key[1]))

    def _crash(self, site: "Site") -> None:
        """Take a site down: kill hosted agents, flush their inboxes."""
        env = self.system.env
        site.up = False
        self.crashes += 1
        bus = self.system.bus
        if bus.has_subscribers(EventKind.SITE_CRASH):
            bus.publish(SiteCrash(env.now, site.site_id))
        for txn in list(self._live):
            master = txn.master
            if master is not None and master.site is site:
                if master.process is not None and master.process.is_alive:
                    master.process.interrupt(AbortReason.SITE_CRASH)
                master.inbox.clear()
            for cohort in txn.cohorts:
                if cohort.site is not site:
                    continue
                if cohort.process is not None and cohort.process.is_alive:
                    # The cleanup hook decides: volatile states abort,
                    # prepared/precommitted states go in-doubt (keeping
                    # their locks) via register_in_doubt().
                    cohort.process.interrupt(AbortReason.SITE_CRASH)
                cohort.inbox.clear()

    def register_in_doubt(self, cohort: "CohortAgent") -> None:
        """A prepared/precommitted cohort lost its process to a crash."""
        self._in_doubt.setdefault(cohort.site.site_id, []).append(cohort)

    def note_resolved(self, cohort: "CohortAgent") -> None:
        """Account one in-doubt resolution and its blocked-lock window.

        ``blocked_lock_ms`` accumulates the time an *operational*
        cohort held its update locks while in doubt -- the paper's
        blocking phenomenon, made a number.  The window opens when
        resolution starts (decision timeout on a live site, or WAL
        replay once a crashed site is back up); time a cohort spends on
        a downed site is excluded, because the whole site is unavailable
        then and its locks block nobody who could otherwise run.
        """
        self.in_doubt_resolved += 1
        since = cohort.in_doubt_since
        if since is not None:
            self.blocked_lock_ms += self.system.env.now - since
            cohort.in_doubt_since = None

    def _recover(self, site: "Site") -> None:
        env = self.system.env
        site.up = True
        self.recoveries += 1
        bus = self.system.bus
        if bus.has_subscribers(EventKind.SITE_RECOVER):
            bus.publish(SiteRecover(env.now, site.site_id))
        pending = self._in_doubt.pop(site.site_id, [])
        self.replays += 1
        if bus.has_subscribers(EventKind.SITE_RECOVERY_REPLAY):
            bus.publish(SiteRecoveryReplay(env.now, site.site_id,
                                           len(pending)))
        if pending:
            env.process(self._replay(site, pending),
                        name=f"wal-replay@{site.site_id}")

    def _replay(self, site: "Site", pending: list["CohortAgent"]):
        """Resolve the recovered site's in-doubt cohorts, one by one."""
        protocol = self.system.protocol
        for cohort in pending:
            if cohort.state not in (CohortState.PREPARED,
                                    CohortState.PRECOMMITTED):
                continue  # already resolved (defensive; should not happen)
            yield from protocol.resolve_in_doubt(cohort)

    def __repr__(self) -> str:
        return (f"<FaultInjector crashes={self.crashes} "
                f"dropped={self.messages_dropped} "
                f"in_doubt_resolved={self.in_doubt_resolved}>")
