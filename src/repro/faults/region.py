"""Correlated-failure plans: datacenter outages and link partitions.

The per-site fault plane (:mod:`repro.faults.plan`) crashes sites
*independently* -- the assumption the paper's blocking argument was made
under.  Real failures correlate: a power event takes out every site of a
datacenter at once, a cut fiber partitions two datacenters while all
their sites keep running.  Gray & Lamport's non-blocking argument is
about exactly this regime, so the reproduction needs a way to express
it.

:class:`RegionPlan` is the parseable spec (``--fault-plan`` on the CLI):
a comma-separated list of :class:`RegionDirective` entries, each either
*scheduled* (``at=<ms>:for=<ms>``) or *stochastic*
(``mttf=<ms>:mttr=<ms>``, exponential cycles on a dedicated RNG stream
per directive):

- ``dc_crash:<dc>:at=<ms>:for=<ms>`` -- every site of datacenter
  ``<dc>`` crashes atomically at ``at`` and recovers ``for`` ms later.
- ``dc_crash:<dc>:mttf=<ms>:mttr=<ms>`` -- the whole-DC outage repeats
  on an exponential MTTF/MTTR cycle.
- ``partition:<dcA>|<dcB>:at=<ms>:for=<ms>`` -- the link group between
  the two datacenters is severed (messages and inquiries across it are
  dropped; the sites themselves stay up) and heals ``for`` ms later.
- ``partition:<dcA>|<dcB>:mttf=<ms>:mttr=<ms>`` -- stochastic variant.

Directives compose: overlapping severs of the same link group nest
(depth-counted), and a DC crash overlapping a per-site outage only takes
down -- and later only recovers -- the sites it actually crashed.

A plan is resolved against the active topology's site -> datacenter
placement by the injector; running one without a multi-DC topology is a
configuration error (surfaced as a CLI ``error:`` exit, like a bad
``--topology`` spec).
"""

from __future__ import annotations

import dataclasses

#: canonical spelling of the accepted directive forms (quoted by parse
#: errors).
_PLAN_FORMS = ("'dc_crash:<dc>:at=<ms>:for=<ms>', "
               "'dc_crash:<dc>:mttf=<ms>:mttr=<ms>', "
               "'partition:<dcA>|<dcB>:at=<ms>:for=<ms>', or "
               "'partition:<dcA>|<dcB>:mttf=<ms>:mttr=<ms>' "
               "(comma-separated)")


@dataclasses.dataclass(frozen=True)
class RegionDirective:
    """One correlated-failure clause of a :class:`RegionPlan`.

    Exactly one mode is set: *scheduled* (``at_ms >= 0`` with a positive
    ``for_ms``) or *stochastic* (positive ``mttf_ms``/``mttr_ms``).
    Partition endpoints are normalized so ``dc_a < dc_b`` -- a severed
    link group cuts both directions.
    """

    kind: str  # "dc_crash" | "partition"
    #: dc_crash: the datacenter that goes down.
    dc: int = -1
    #: partition: the two datacenters whose link group is severed.
    dc_a: int = -1
    dc_b: int = -1
    #: scheduled mode: onset time and outage duration.
    at_ms: float = -1.0
    for_ms: float = 0.0
    #: stochastic mode: exponential healthy/outage cycle means.
    mttf_ms: float = 0.0
    mttr_ms: float = 0.0

    @property
    def is_scheduled(self) -> bool:
        return self.at_ms >= 0.0

    @property
    def stream_name(self) -> str:
        """Dedicated RNG stream for this directive's stochastic cycle."""
        if self.kind == "dc_crash":
            return f"faults-dc-{self.dc}"
        return f"faults-partition-{self.dc_a}-{self.dc_b}"

    def dcs(self) -> tuple[int, ...]:
        """Every datacenter this directive references."""
        if self.kind == "dc_crash":
            return (self.dc,)
        return (self.dc_a, self.dc_b)

    def validate(self) -> None:
        if self.kind not in ("dc_crash", "partition"):
            raise ValueError(f"unknown directive kind {self.kind!r}")
        if self.kind == "dc_crash":
            if self.dc < 0:
                raise ValueError("dc_crash needs a datacenter index >= 0")
        else:
            if self.dc_a < 0 or self.dc_b < 0:
                raise ValueError(
                    "partition needs two datacenter indices >= 0")
            if self.dc_a == self.dc_b:
                raise ValueError(
                    f"partition endpoints must differ, got "
                    f"{self.dc_a}|{self.dc_b}")
        scheduled = self.is_scheduled or self.for_ms > 0
        stochastic = self.mttf_ms > 0 or self.mttr_ms > 0
        if scheduled and stochastic:
            raise ValueError(
                "a directive is either scheduled (at=/for=) or "
                "stochastic (mttf=/mttr=), not both")
        if scheduled:
            if self.at_ms < 0 or self.for_ms <= 0:
                raise ValueError(
                    "scheduled directives need at=<ms> >= 0 and "
                    "for=<ms> > 0")
        elif stochastic:
            if self.mttf_ms <= 0 or self.mttr_ms <= 0:
                raise ValueError(
                    "stochastic directives need mttf=<ms> > 0 and "
                    "mttr=<ms> > 0")
        else:
            raise ValueError(
                "directive needs either at=<ms>:for=<ms> or "
                "mttf=<ms>:mttr=<ms>")

    def describe(self) -> str:
        target = (f"dc{self.dc}" if self.kind == "dc_crash"
                  else f"dc{self.dc_a}|dc{self.dc_b}")
        if self.is_scheduled:
            timing = f"at={self.at_ms:g}ms for={self.for_ms:g}ms"
        else:
            timing = f"mttf={self.mttf_ms:g}ms mttr={self.mttr_ms:g}ms"
        return f"{self.kind} {target} {timing}"


@dataclasses.dataclass(frozen=True)
class RegionPlan:
    """A parsed correlated-failure plan (tuple of directives).

    Attached to a :class:`repro.faults.FaultConfig` via its ``region``
    field; an empty plan is inactive.  The datacenter indices are checked
    against the live topology's placement when the injector wires up
    (:meth:`check_dcs`), not at parse time -- the plan text does not know
    the topology.
    """

    directives: tuple[RegionDirective, ...] = ()

    def validate(self) -> None:
        for directive in self.directives:
            directive.validate()

    def check_dcs(self, num_dcs: int) -> None:
        """Reject directives referencing datacenters the topology lacks."""
        for directive in self.directives:
            for dc in directive.dcs():
                if dc >= num_dcs:
                    raise ValueError(
                        f"fault plan references datacenter {dc} but the "
                        f"topology only has {num_dcs} "
                        f"(directive: {directive.describe()})")

    def describe(self) -> str:
        if not self.directives:
            return "none"
        return ", ".join(d.describe() for d in self.directives)

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "RegionPlan":
        """Parse the CLI syntax (module docstring has the grammar)."""
        raw = text.strip().lower()
        if not raw:
            raise ValueError(f"bad fault plan spec {text!r}: empty plan")
        directives = []
        for clause in raw.split(","):
            directives.append(cls._parse_directive(clause.strip(), text))
        plan = cls(directives=tuple(directives))
        try:
            plan.validate()
        except ValueError as error:
            raise ValueError(
                f"bad fault plan spec {text!r}: {error}") from None
        return plan

    @classmethod
    def _parse_directive(cls, clause: str, text: str) -> RegionDirective:
        parts = clause.split(":")
        kind = parts[0]
        try:
            if kind == "dc_crash" and len(parts) >= 3:
                options = cls._parse_options(
                    parts[2:], ("at", "for", "mttf", "mttr"))
                return RegionDirective(
                    kind="dc_crash", dc=int(parts[1]),
                    **cls._timing(options))
            if kind == "partition" and len(parts) >= 3:
                ends = parts[1].split("|")
                if len(ends) != 2:
                    raise ValueError(
                        f"expected <dcA>|<dcB> endpoints, got {parts[1]!r}")
                dc_a, dc_b = sorted(int(end) for end in ends)
                options = cls._parse_options(
                    parts[2:], ("at", "for", "mttf", "mttr"))
                return RegionDirective(
                    kind="partition", dc_a=dc_a, dc_b=dc_b,
                    **cls._timing(options))
        except ValueError as error:
            raise ValueError(
                f"bad fault plan spec {text!r}: {error}") from None
        raise ValueError(
            f"bad fault plan spec {text!r}; expected {_PLAN_FORMS}")

    @staticmethod
    def _timing(options: dict[str, float]) -> dict[str, float]:
        timing: dict[str, float] = {}
        if "at" in options:
            timing["at_ms"] = options["at"]
        if "for" in options:
            timing["for_ms"] = options["for"]
        if "mttf" in options:
            timing["mttf_ms"] = options["mttf"]
        if "mttr" in options:
            timing["mttr_ms"] = options["mttr"]
        return timing

    @staticmethod
    def _parse_options(segments: list[str],
                       allowed: tuple[str, ...]) -> dict[str, float]:
        options: dict[str, float] = {}
        for segment in segments:
            key, sep, value = segment.partition("=")
            if not sep or key not in allowed:
                raise ValueError(
                    f"unknown option {segment!r} (accepted: "
                    + ", ".join(f"{name}=<v>" for name in allowed) + ")")
            options[key] = float(value)
        return options
