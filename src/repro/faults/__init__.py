"""Configuration-driven fault injection (the general failure plane).

The paper's argument about commit protocols is ultimately an argument
about *failures* -- blocking in the 2PC family versus 3PC's termination
protocol -- yet most simulation studies (this reproduction's scripted
:mod:`repro.failures` scenarios included) only ever crash one
hand-picked process.  This package generalizes that: a seeded,
deterministic :class:`FaultPlan` schedules stochastic site crash/recover
cycles (MTTF/MTTR) or explicit crash schedules, plus per-message loss in
the network; the :class:`FaultInjector` executes the plan against a
running :class:`~repro.db.system.DistributedSystem`, and the protocol
layer (``core/base.py``) supplies the timeout and WAL-replay recovery
machinery every registered protocol inherits.

Determinism: all fault draws come from dedicated named RNG streams
(``faults-site-<id>``, ``faults-msgloss``), so enabling faults never
perturbs the workload streams, and the same seed plus the same
:class:`FaultConfig` reproduces the identical failure trajectory.

Correlated failures (:mod:`repro.faults.region`) extend the plane from
independent per-site crashes to whole-datacenter outages and inter-DC
link partitions: a parseable :class:`RegionPlan` (``--fault-plan``)
crashes every site of a datacenter atomically or severs the link group
between two datacenters, with scheduled (``at=/for=``) or stochastic
(``mttf=/mttr=`` on per-directive streams ``faults-dc-<dc>`` /
``faults-partition-<a>-<b>``) timing.  Region plans require a
multi-datacenter topology (``--topology dcs:...``) to resolve the
site -> datacenter placement.

An *inactive* config (:attr:`FaultConfig.is_active` false) wires
nothing: the system runs byte-identical to one built without faults
(pinned against ``tests/data/golden_sweep.json``).
"""

from repro.faults.plan import CrashEvent, FaultConfig, FaultPlan, FaultTimeouts
from repro.faults.region import RegionDirective, RegionPlan
from repro.faults.injector import FaultInjector

__all__ = [
    "CrashEvent",
    "FaultConfig",
    "FaultInjector",
    "FaultPlan",
    "FaultTimeouts",
    "RegionDirective",
    "RegionPlan",
]
