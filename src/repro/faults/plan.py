"""Fault configuration and the deterministic fault plan.

:class:`FaultConfig` is the user-facing knob set (CLI flags ``--faults``,
``--mttf-ms``, ``--mttr-ms``, ``--msg-loss`` map straight onto it);
:class:`FaultPlan` turns a config plus the system's named RNG streams
into concrete, reproducible crash/recover cycles and message-loss draws.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.faults.region import RegionDirective, RegionPlan

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.rng import RandomStreams


@dataclasses.dataclass(frozen=True)
class CrashEvent:
    """One scheduled crash: ``site_id`` goes down at ``at_ms`` for
    ``duration_ms``."""

    site_id: int
    at_ms: float
    duration_ms: float


@dataclasses.dataclass(frozen=True)
class FaultTimeouts:
    """Protocol-layer timeouts (only consulted while faults are active).

    Defaults are calibrated against the baseline response time (a few
    hundred ms at moderate MPL): long enough that healthy traffic never
    times out spuriously, short enough that failures resolve well inside
    a typical MTTR.
    """

    #: master's wait for each cohort work-completion report.
    work_timeout_ms: float = 5_000.0
    #: master's wait for each vote; cohort's wait for PREPARE.
    vote_timeout_ms: float = 2_000.0
    #: cohort's wait for the global decision (then: status inquiry).
    decision_timeout_ms: float = 1_500.0
    #: master's wait for decision ACKs (expired ACKs are abandoned --
    #: the cohorts resolve themselves).
    ack_timeout_ms: float = 1_500.0
    #: pause between status-inquiry retries while the master site is
    #: unreachable or the master is still undecided.
    resolve_retry_ms: float = 500.0

    def validate(self) -> None:
        for field in dataclasses.fields(self):
            if getattr(self, field.name) <= 0:
                raise ValueError(f"{field.name} must be > 0")


@dataclasses.dataclass(frozen=True)
class FaultConfig:
    """Everything the fault plane can inject.

    The default instance is *inactive* (no crashes, no loss): attaching
    it to a system wires nothing and changes nothing.
    """

    #: mean time to failure per site (exponential); 0 disables
    #: stochastic crashes.
    mttf_ms: float = 0.0
    #: mean time to repair (exponential), used with ``mttf_ms``.
    mttr_ms: float = 2_000.0
    #: per-remote-message loss probability.
    msg_loss_prob: float = 0.0
    #: mean extra wire delay per remote message (exponential); 0
    #: disables delay injection (the paper's zero-latency switch).
    msg_delay_ms: float = 0.0
    #: message kinds subject to loss/delay, by :class:`MessageKind`
    #: value (e.g. ``("VOTE_YES", "COMMIT")``); None = every kind.
    faulty_kinds: tuple[str, ...] | None = None
    #: explicit crash schedule (applied in addition to MTTF cycles).
    crash_schedule: tuple[CrashEvent, ...] = ()
    #: sites eligible for stochastic crashes (None = all sites).
    crashable_sites: tuple[int, ...] | None = None
    timeouts: FaultTimeouts = FaultTimeouts()
    #: correlated-failure plan (whole-DC outages, link partitions) over
    #: the active multi-datacenter topology; None = no region faults.
    region: RegionPlan | None = None

    @property
    def is_active(self) -> bool:
        """True when the config injects anything at all."""
        return (self.mttf_ms > 0 or self.msg_loss_prob > 0
                or self.msg_delay_ms > 0 or bool(self.crash_schedule)
                or (self.region is not None
                    and bool(self.region.directives)))

    def validate(self) -> None:
        if self.mttf_ms < 0:
            raise ValueError("mttf_ms must be >= 0")
        if self.mttr_ms <= 0:
            raise ValueError("mttr_ms must be > 0")
        if not 0.0 <= self.msg_loss_prob < 1.0:
            raise ValueError("msg_loss_prob must be in [0, 1)")
        if self.msg_delay_ms < 0:
            raise ValueError("msg_delay_ms must be >= 0")
        if self.faulty_kinds is not None:
            from repro.db.messages import MessageKind
            known = {kind.value for kind in MessageKind}
            for name in self.faulty_kinds:
                if name not in known:
                    raise ValueError(f"unknown message kind {name!r}")
        for event in self.crash_schedule:
            if event.at_ms < 0 or event.duration_ms <= 0:
                raise ValueError(f"bad crash schedule entry {event}")
        if self.region is not None:
            self.region.validate()
        self.timeouts.validate()


class FaultPlan:
    """Deterministic realization of a :class:`FaultConfig`.

    Crash cycles for each site are drawn lazily from that site's own
    stream (``faults-site-<id>``) so sites are independent and the
    draw order cannot depend on event-loop interleaving; message-loss
    and message-delay draws come from ``faults-msgloss`` /
    ``faults-msgdelay`` in network send order (itself deterministic).
    """

    def __init__(self, config: FaultConfig, streams: "RandomStreams",
                 num_sites: int) -> None:
        config.validate()
        self.config = config
        self.num_sites = num_sites
        self._streams = streams
        self._loss_rng = streams.stream("faults-msgloss")
        self._delay_rng = streams.stream("faults-msgdelay")
        self._faulty_kinds = (None if config.faulty_kinds is None
                              else frozenset(config.faulty_kinds))

    # ------------------------------------------------------------------
    def scheduled_crashes(self, site_id: int) -> list[CrashEvent]:
        """The explicit crash events for one site, in time order."""
        return sorted((e for e in self.config.crash_schedule
                       if e.site_id == site_id), key=lambda e: e.at_ms)

    def stochastic_sites(self) -> list[int]:
        """Sites running an MTTF/MTTR crash cycle."""
        if self.config.mttf_ms <= 0:
            return []
        if self.config.crashable_sites is not None:
            return [s for s in self.config.crashable_sites
                    if 0 <= s < self.num_sites]
        return list(range(self.num_sites))

    def crash_cycle(self, site_id: int,
                    ) -> typing.Iterator[tuple[float, float]]:
        """Infinite ``(uptime_ms, downtime_ms)`` draws for one site."""
        rng = self._streams.stream(f"faults-site-{site_id}")
        mttf, mttr = self.config.mttf_ms, self.config.mttr_ms
        while True:
            yield rng.expovariate(1.0 / mttf), rng.expovariate(1.0 / mttr)

    def region_directives(self) -> tuple[RegionDirective, ...]:
        """The correlated-failure directives of this plan (maybe empty)."""
        region = self.config.region
        return () if region is None else region.directives

    def region_cycle(self, directive: RegionDirective,
                     ) -> typing.Iterator[tuple[float, float]]:
        """Infinite ``(healthy_ms, outage_ms)`` draws for one stochastic
        directive, from its dedicated stream (``faults-dc-<dc>`` /
        ``faults-partition-<a>-<b>``)."""
        rng = self._streams.stream(directive.stream_name)
        while True:
            yield (rng.expovariate(1.0 / directive.mttf_ms),
                   rng.expovariate(1.0 / directive.mttr_ms))

    def affects_kind(self, kind_name: str) -> bool:
        """Whether loss/delay injection applies to this message kind."""
        return self._faulty_kinds is None or kind_name in self._faulty_kinds

    def lose_message(self, kind_name: str) -> bool:
        """Draw whether the next remote message is lost."""
        prob = self.config.msg_loss_prob
        if prob <= 0 or not self.affects_kind(kind_name):
            return False
        return self._loss_rng.random() < prob

    def message_delay(self, kind_name: str) -> float:
        """Draw the next remote message's extra wire delay in ms."""
        mean = self.config.msg_delay_ms
        if mean <= 0 or not self.affects_kind(kind_name):
            return 0.0
        return self._delay_rng.expovariate(1.0 / mean)
